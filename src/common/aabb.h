/**
 * @file
 * Axis-aligned bounding boxes with two ray-intersection paths:
 *
 *  - intersectGeneric(): the slab method against an arbitrary box, with
 *    the per-plane linear-equation cost the paper cites (Sec. IV-A /
 *    Fig. 5(a)) charged to an OpCounter;
 *  - intersectUnitCube()/intersectNormalized(): the simplified path that
 *    Model Normalization enables, costing 3 MUL + 3 MAC per bound.
 */

#ifndef FUSION3D_COMMON_AABB_H_
#define FUSION3D_COMMON_AABB_H_

#include <optional>

#include "common/op_counter.h"
#include "common/ray.h"
#include "common/vec.h"

namespace fusion3d
{

/** The [t0, t1] parametric interval of a ray/box overlap. */
struct RaySpan
{
    float t0 = 0.0f;
    float t1 = 0.0f;
};

/** An axis-aligned box given by its two extreme corners. */
struct Aabb
{
    Vec3f lo{0.0f, 0.0f, 0.0f};
    Vec3f hi{1.0f, 1.0f, 1.0f};

    Aabb() = default;
    Aabb(const Vec3f &l, const Vec3f &h) : lo(l), hi(h) {}

    /** The canonical normalized model box, [0,0,0] .. [1,1,1]. */
    static Aabb unitCube() { return {Vec3f(0.0f), Vec3f(1.0f)}; }

    Vec3f extent() const { return hi - lo; }
    Vec3f center() const { return (lo + hi) * 0.5f; }
    float volume() const { const Vec3f e = extent(); return e.x * e.y * e.z; }

    bool
    contains(const Vec3f &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    /** Grow the box to cover @p p. */
    void
    expand(const Vec3f &p)
    {
        lo = compMin(lo, p);
        hi = compMax(hi, p);
    }

    /**
     * Map a point from this box into the unit cube (model normalization,
     * Technique T1-1). Points outside map outside [0,1]^3.
     */
    Vec3f
    normalizePoint(const Vec3f &p) const
    {
        const Vec3f e = extent();
        return {(p.x - lo.x) / e.x, (p.y - lo.y) / e.y, (p.z - lo.z) / e.z};
    }

    /** Inverse of normalizePoint(). */
    Vec3f
    denormalizePoint(const Vec3f &u) const
    {
        return lo + u * extent();
    }

    /**
     * Generic slab-method intersection against an arbitrary box. This is
     * the *unnormalized* baseline the paper charges at 18 DIV + 54 MUL +
     * 54 ADD per ray (solving six plane equations): each of the six
     * plane hits requires a division by the direction component and the
     * in-plane containment check multiplications/additions.
     *
     * @param ray   The query ray (only origin/dir used; no invDir shortcut,
     *              the baseline hardware would not have it).
     * @param ops   If non-null, charged with the baseline op cost.
     * @return The overlap span clipped to t >= 0, or nullopt on miss.
     */
    std::optional<RaySpan>
    intersectGeneric(const Ray &ray, OpCounter *ops = nullptr) const;

    /**
     * Fast intersection valid once the model is normalized: the box
     * bounds are compile-time constants so each of the two t-bounds per
     * axis is one multiply (t = (c - o) * invDir = c*invDir - o*invDir
     * with c in {0, 1}) folded as 3 MUL + 3 MAC per bound, the cost the
     * paper reports for Technique T1-1.
     *
     * @param ray  The query ray in normalized coordinates.
     * @param ops  If non-null, charged with the fast-path op cost.
     */
    static std::optional<RaySpan>
    intersectUnitCube(const Ray &ray, OpCounter *ops = nullptr);

    /**
     * Fast intersection against one of the eight partition sub-cubes of
     * the normalized space (Technique T1-1, lower half of Fig. 5(a)).
     * Sub-cube corners are k*0.5 with k in {0,1,2}, still folded
     * constants, so the cost per bound stays 3 MUL + 3 MAC.
     *
     * @param ray    Ray in normalized coordinates.
     * @param octant Sub-cube index, 0..7 (bit 0 -> +x half, bit 1 -> +y,
     *               bit 2 -> +z).
     * @param ops    If non-null, charged with the fast-path op cost.
     */
    static std::optional<RaySpan>
    intersectOctant(const Ray &ray, int octant, OpCounter *ops = nullptr);
};

} // namespace fusion3d

#endif // FUSION3D_COMMON_AABB_H_
