#include "nerf/pipeline.h"

#include "common/logging.h"
#include "common/quant.h"
#include "common/thread_pool.h"
#include "nerf/parallel_render.h"

namespace fusion3d::nerf
{

namespace
{

AdamConfig
adamFor(float lr, bool sparse)
{
    AdamConfig cfg;
    cfg.lr = lr;
    cfg.beta1 = 0.9f;
    cfg.beta2 = 0.99f;
    cfg.epsilon = 1e-15f;
    cfg.skipZeroGrad = sparse;
    return cfg;
}

/** Rays per compositing chunk in the pool-parallel loops. */
constexpr int kCompositeGrain = 64;

} // namespace

NerfPipeline::NerfPipeline(const PipelineConfig &cfg)
    : cfg_(cfg),
      model_(std::make_unique<NerfModel>(cfg.model, cfg.seed)),
      grid_(cfg.occupancyResolution, cfg.occupancyThreshold),
      sampler_(cfg.sampler),
      ws_(model_->makeWorkspace()),
      adam_encoding_(model_->encoding().paramCount(), adamFor(cfg.lrEncoding, true)),
      adam_density_(model_->densityNet().paramCount(), adamFor(cfg.lrNet, false)),
      adam_color_(model_->colorNet().paramCount(), adamFor(cfg.lrNet, false))
{
}

RayEval
NerfPipeline::traceRay(const Ray &ray, Pcg32 &rng, bool record, RayWorkload *workload)
{
    RayEval ev;
    traceRays({&ray, 1}, rng, record, {&ev, 1}, workload);
    return ev;
}

void
NerfPipeline::backwardLastRay(const Vec3f &dcolor)
{
    backwardRays({&dcolor, 1});
}

void
NerfPipeline::traceRays(std::span<const Ray> rays, Pcg32 &rng, bool record,
                        std::span<RayEval> out, RayWorkload *workload)
{
    if (out.size() < rays.size())
        panic("NerfPipeline::traceRays: output span too small (%zu < %zu)",
              out.size(), rays.size());
    if (workload) {
        workload->pairs.clear();
        workload->totalCandidates = 0;
        workload->totalValid = 0;
        workload->ddaSteps = 0;
        workload->intersectionOps.reset();
    }

    SampleBatch &batch = record ? tape_batch_ : scratch_batch_;
    batch.clear();

    // Stage I: sample every ray, in order, into one flat SoA batch.
    // The rng is consumed per ray exactly as the scalar loop did, so
    // jitter streams are batch-size invariant.
    for (std::size_t r = 0; r < rays.size(); ++r) {
        sampler_.sample(rays[r], &grid_, rng, scratch_samples_,
                        workload ? &scratch_workload_ : nullptr);
        batch.appendRay(normalize(rays[r].dir), scratch_samples_);
        out[r] = RayEval{};
        out[r].samples = static_cast<int>(scratch_samples_.size());
        out[r].candidates =
            workload ? scratch_workload_.totalCandidates : out[r].samples;
        if (workload)
            workload->mergeFrom(scratch_workload_);
    }

    // Stages II+III: one batched forward over the whole flattened
    // batch, sharded across the pool when one is attached. Sharding is
    // bit-exact with the serial call (forwardBatch is batch-size
    // invariant per sample); the visitor path stays serial so access
    // traces keep their canonical order.
    batch.prepareOutputs();
    if (pool_ && !visitor_) {
        model_->forwardBatchParallel(batch.positions, batch.dirs, par_ws_,
                                     batch.sigmas, batch.rgbs, pool_);
    } else {
        model_->forwardBatch(batch.positions, batch.dirs, batch_ws_, batch.sigmas,
                             batch.rgbs, visitor_);
    }

    // Composite per ray through its CSR range. Each ray reads and
    // writes only its own range/slots, so the parallel split is
    // bit-exact with the serial loop.
    std::vector<CompositeResult> &results = record ? tape_results_ : scratch_results_;
    results.resize(rays.size());
    const auto composite_ray = [&](std::size_t r) {
        const std::size_t begin = batch.rayBegin(static_cast<int>(r));
        const std::size_t count = batch.raySampleCount(static_cast<int>(r));
        const CompositeResult cr =
            composite({batch.sigmas.data() + begin, count},
                      {batch.rgbs.data() + begin, count},
                      {batch.dts.data() + begin, count}, cfg_.render);
        results[r] = cr;
        out[r].color = cr.color;
        out[r].transmittance = cr.transmittance;
        out[r].composited = cr.used;
        if (count > 0)
            out[r].firstHitT = batch.ts[begin];
    };
    if (pool_) {
        pool_->parallelFor(
            0, static_cast<int>(rays.size()),
            [&](int b, int e) {
                for (int r = b; r < e; ++r)
                    composite_ray(static_cast<std::size_t>(r));
            },
            kCompositeGrain);
    } else {
        for (std::size_t r = 0; r < rays.size(); ++r)
            composite_ray(r);
    }

    if (record)
        tape_valid_ = true;
}

void
NerfPipeline::backwardRays(std::span<const Vec3f> dcolors)
{
    if (!tape_valid_)
        panic("NerfPipeline::backwardRays without a recorded traceRays");
    const std::size_t num_rays = static_cast<std::size_t>(tape_batch_.numRays());
    if (dcolors.size() < num_rays)
        panic("NerfPipeline::backwardRays: gradient span too small (%zu < %zu)",
              dcolors.size(), num_rays);

    // Composite backward per ray into the batch-wide gradient arrays
    // (entries past each ray's used count are zeroed, so the batched
    // model backward is a no-op for them). Rays write disjoint ranges;
    // the only shared state is the scratch buffer, so the parallel
    // split binds one scratch per chunk index.
    tape_dsigmas_.resize(tape_batch_.size());
    tape_drgbs_.resize(tape_batch_.size());
    const auto backward_ray = [&](std::size_t r, CompositeBackwardScratch &scratch) {
        const std::size_t begin = tape_batch_.rayBegin(static_cast<int>(r));
        const std::size_t count = tape_batch_.raySampleCount(static_cast<int>(r));
        compositeBackward({tape_batch_.sigmas.data() + begin, count},
                          {tape_batch_.rgbs.data() + begin, count},
                          {tape_batch_.dts.data() + begin, count}, cfg_.render,
                          tape_results_[r], dcolors[r],
                          {tape_dsigmas_.data() + begin, count},
                          {tape_drgbs_.data() + begin, count}, scratch);
    };
    if (pool_) {
        const std::size_t num_chunks =
            (num_rays + static_cast<std::size_t>(kCompositeGrain) - 1) /
            static_cast<std::size_t>(kCompositeGrain);
        if (composite_scratches_.size() < num_chunks)
            composite_scratches_.resize(num_chunks);
        pool_->parallelForChunks(
            0, static_cast<int>(num_rays),
            [&](int chunk, int b, int e) {
                CompositeBackwardScratch &scratch =
                    composite_scratches_[static_cast<std::size_t>(chunk)];
                for (int r = b; r < e; ++r)
                    backward_ray(static_cast<std::size_t>(r), scratch);
            },
            kCompositeGrain);
    } else {
        for (std::size_t r = 0; r < num_rays; ++r)
            backward_ray(r, composite_scratch_);
    }

    // One batched backward through both MLPs and the hash encoding,
    // sharded with deterministic gradient reduction when a pool is
    // attached.
    if (pool_) {
        model_->backwardBatchParallel(tape_batch_.positions, tape_batch_.dirs,
                                      tape_dsigmas_, tape_drgbs_, par_ws_, pool_);
    } else {
        model_->backwardBatch(tape_batch_.positions, tape_batch_.dirs, tape_dsigmas_,
                              tape_drgbs_, batch_ws_);
    }
    tape_valid_ = false;
}

void
NerfPipeline::zeroGrads()
{
    model_->zeroGrads();
}

void
NerfPipeline::optimizerStep()
{
    // Each parameter's Adam update is independent, so the parameter-
    // range split is bit-exact with the serial step.
    adam_encoding_.step(model_->encoding().params(), model_->encoding().grads(), pool_);
    adam_density_.step(model_->densityNet().params(), model_->densityNet().grads(),
                       pool_);
    adam_color_.step(model_->colorNet().params(), model_->colorNet().grads(), pool_);
}

void
NerfPipeline::updateOccupancy(Pcg32 &rng)
{
    if (pool_) {
        // Split update: the jitter draws happen serially in cell order
        // (identical rng stream to grid_.update), then the probes run
        // as one sharded density batch — bit-exact per sample with the
        // scalar queryDensity path, so the refreshed grid is identical
        // to the serial update's.
        grid_.collectProbePositions(rng, occ_positions_);
        occ_densities_.resize(occ_positions_.size());
        model_->queryDensityBatchParallel(occ_positions_, par_ws_, occ_densities_,
                                          pool_);
        grid_.applyDensities(occ_densities_);
        return;
    }
    grid_.update([this](const Vec3f &p) { return model_->queryDensity(p, ws_); }, rng);
}

void
NerfPipeline::quantizeWeights()
{
    fakeQuantizeInPlace(model_->encoding().params());
    fakeQuantizeInPlace(model_->densityNet().params());
    fakeQuantizeInPlace(model_->colorNet().params());
}

std::size_t
NerfPipeline::paramCount() const
{
    return model_->paramCount();
}

bool
NerfPipeline::renderViewTiled(const Camera &camera, ThreadPool &pool, Image &out)
{
    TiledRenderConfig tcfg;
    tcfg.sampler = cfg_.sampler;
    tcfg.sampler.jitter = false; // inference render
    tcfg.render = cfg_.render;
    tcfg.seed = cfg_.seed;
    out = renderImageTiled(*model_, &grid_, camera, tcfg, &pool);
    return true;
}

} // namespace fusion3d::nerf
