#include "sim/stats.h"

#include <algorithm>
#include <cmath>

namespace fusion3d::sim
{

void
Distribution::sample(double v)
{
    ++count_;
    sum_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
    if (count_ == 1) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
}

void
Distribution::reset()
{
    count_ = 0;
    mean_ = m2_ = sum_ = min_ = max_ = 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::sample(std::uint64_t v, std::uint64_t weight)
{
    buckets_[v] += weight;
    count_ += weight;
}

void
Histogram::reset()
{
    buckets_.clear();
    count_ = 0;
}

double
Histogram::fraction(std::uint64_t v) const
{
    if (count_ == 0)
        return 0.0;
    const auto it = buckets_.find(v);
    if (it == buckets_.end())
        return 0.0;
    return static_cast<double>(it->second) / static_cast<double>(count_);
}

Counter &
StatGroup::addCounter(const std::string &name)
{
    counters_.push_back(std::make_unique<Counter>(name));
    return *counters_.back();
}

Distribution &
StatGroup::addDistribution(const std::string &name)
{
    distributions_.push_back(std::make_unique<Distribution>(name));
    return *distributions_.back();
}

Histogram &
StatGroup::addHistogram(const std::string &name)
{
    histograms_.push_back(std::make_unique<Histogram>(name));
    return *histograms_.back();
}

Quantiles &
StatGroup::addQuantiles(const std::string &name)
{
    quantiles_.push_back(std::make_unique<Quantiles>(name));
    return *quantiles_.back();
}

void
StatGroup::resetAll()
{
    for (auto &c : counters_)
        c->reset();
    for (auto &d : distributions_)
        d->reset();
    for (auto &h : histograms_)
        h->reset();
    for (auto &q : quantiles_)
        q->reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &c : counters_)
        os << name_ << '.' << c->name() << ' ' << c->value() << '\n';
    for (const auto &d : distributions_) {
        os << name_ << '.' << d->name() << ".mean " << d->mean() << '\n';
        os << name_ << '.' << d->name() << ".stddev " << d->stddev() << '\n';
        os << name_ << '.' << d->name() << ".min " << d->min() << '\n';
        os << name_ << '.' << d->name() << ".max " << d->max() << '\n';
    }
    for (const auto &h : histograms_) {
        for (const auto &[bucket, n] : h->buckets())
            os << name_ << '.' << h->name() << '[' << bucket << "] " << n << '\n';
    }
    for (const auto &q : quantiles_) {
        os << name_ << '.' << q->name() << ".p50 " << q->quantile(0.50) << '\n';
        os << name_ << '.' << q->name() << ".p95 " << q->quantile(0.95) << '\n';
        os << name_ << '.' << q->name() << ".p99 " << q->quantile(0.99) << '\n';
        os << name_ << '.' << q->name() << ".p999 " << q->quantile(0.999)
           << '\n';
    }
}

void
StatGroup::collect(obs::MetricSink &sink) const
{
    const std::string prefix = name_ + '.';
    for (const auto &c : counters_)
        sink.counter(prefix + c->name(),
                     static_cast<double>(c->value()));
    for (const auto &d : distributions_) {
        const std::string base = prefix + d->name();
        sink.counter(base + ".count", static_cast<double>(d->count()));
        sink.gauge(base + ".mean", d->mean());
        sink.gauge(base + ".stddev", d->stddev());
        sink.gauge(base + ".min", d->min());
        sink.gauge(base + ".max", d->max());
        sink.counter(base + ".sum", d->total());
    }
    for (const auto &h : histograms_) {
        const std::string base = prefix + h->name();
        for (const auto &[bucket, n] : h->buckets())
            sink.bucket(base, "bucket=\"" + std::to_string(bucket) + "\"",
                        static_cast<double>(n));
        sink.counter(base + ".count", static_cast<double>(h->count()));
    }
    // No ".count" for quantiles: a Quantiles stat typically shares its
    // name with the Distribution over the same samples (ServerStats'
    // latency_ms), which already exports the count.
    for (const auto &q : quantiles_) {
        const std::string base = prefix + q->name();
        sink.gauge(base + ".p50", q->quantile(0.50));
        sink.gauge(base + ".p95", q->quantile(0.95));
        sink.gauge(base + ".p99", q->quantile(0.99));
        sink.gauge(base + ".p999", q->quantile(0.999));
    }
}

} // namespace fusion3d::sim
