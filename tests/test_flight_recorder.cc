/**
 * @file
 * Tests of the request-scoped observability layer: trace-context
 * propagation across ThreadPool boundaries (including nested
 * parallelFor and restore-after-task), span parent linkage, the
 * flush-at-thread-exit guarantee (a joined thread's spans survive into
 * the dump), the FlightRecorder ring (wrap, dump files, dump-storm
 * cap, fault/exception/SLO triggers), the SloMonitor burn-rate
 * arithmetic on a deterministic clock, and an end-to-end check that a
 * traced RenderServer run attributes >= 90 % of each request's
 * latency to child spans — the same invariant tools/f3d_trace gates
 * in CI. Expected to pass under -DFUSION3D_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "nerf/nerf_model.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/scheduler.h"

using namespace fusion3d;

namespace
{

nerf::NerfModelConfig
tinyModelConfig()
{
    nerf::NerfModelConfig cfg;
    cfg.grid.levels = 4;
    cfg.grid.featuresPerLevel = 2;
    cfg.grid.log2TableSize = 9;
    cfg.grid.baseResolution = 4;
    cfg.grid.maxResolution = 32;
    cfg.geoFeatures = 7;
    cfg.densityHidden = 16;
    cfg.colorHidden = 16;
    cfg.shDegree = 2;
    return cfg;
}

nerf::Camera
testCamera(int size = 16)
{
    return nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 35.0f, 20.0f, 45.0f,
                               size, size);
}

/** Spans with @p name from a snapshot. */
std::vector<obs::TraceEvent>
spansNamed(const std::vector<obs::TraceEvent> &events, const char *name)
{
    std::vector<obs::TraceEvent> out;
    for (const obs::TraceEvent &ev : events)
        if (std::string(ev.name) == name)
            out.push_back(ev);
    return out;
}

/**
 * The tracer, flight recorder and fault injector are process-wide;
 * every test starts from a clean slate and leaves one behind.
 */
class FlightRecorderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::Tracer::instance().setEnabled(false);
        obs::Tracer::instance().clear();
        obs::FlightRecorder::instance().setEnabled(true);
        obs::FlightRecorder::instance().setDumpDir("");
        obs::FlightRecorder::instance().reset();
        FaultInjector::instance().reset();
    }

    void
    TearDown() override
    {
        FaultInjector::instance().reset();
        obs::Tracer::instance().setEnabled(false);
        obs::Tracer::instance().clear();
        obs::FlightRecorder::instance().setDumpDir("");
        obs::FlightRecorder::instance().reset();
    }

    /** A scratch directory under the build tree, wiped per call. */
    static std::string
    scratchDir(const char *name)
    {
        const std::filesystem::path dir =
            std::filesystem::temp_directory_path() /
            (std::string("f3d_flight_test_") + name);
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        return dir.string();
    }
};

// --- Trace-context propagation ------------------------------------------

TEST_F(FlightRecorderTest, ContextPropagatesThroughPool)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(true);
    ThreadPool pool(2);
    {
        obs::ScopedTraceContext ctx(obs::TraceContext{42, 0});
        pool.parallelFor(0, 8, [](int b, int e) {
            for (int i = b; i < e; ++i)
                F3D_TRACE_SPAN("test", "tile");
        });
    }
    const auto tiles = spansNamed(tracer.snapshot(), "tile");
    ASSERT_EQ(tiles.size(), 8u);
    for (const obs::TraceEvent &ev : tiles)
        EXPECT_EQ(ev.requestId, 42u) << "tile span lost its request id";
}

TEST_F(FlightRecorderTest, ContextRestoredAfterTask)
{
    // A worker that ran a request-tagged task must NOT leak that
    // context into the next, untagged task.
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(true);
    ThreadPool pool(1);
    {
        obs::ScopedTraceContext ctx(obs::TraceContext{7, 0});
        pool.submit([] { F3D_TRACE_SPAN("test", "tagged"); }).wait();
    }
    pool.submit([] { F3D_TRACE_SPAN("test", "untagged"); }).wait();

    const auto events = tracer.snapshot();
    const auto tagged = spansNamed(events, "tagged");
    const auto untagged = spansNamed(events, "untagged");
    ASSERT_EQ(tagged.size(), 1u);
    ASSERT_EQ(untagged.size(), 1u);
    EXPECT_EQ(tagged[0].requestId, 7u);
    EXPECT_EQ(untagged[0].requestId, 0u) << "context leaked across tasks";
}

TEST_F(FlightRecorderTest, NestedParallelForKeepsContext)
{
    // The serve path: a request task fans out into row tiles on the
    // same pool. Tiles stolen by other workers must stay attributed.
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(true);
    ThreadPool pool(2);
    {
        obs::ScopedTraceContext ctx(obs::TraceContext{9, 0});
        pool.waitHelping(*std::make_unique<std::future<void>>(
            pool.submit([&pool] {
                F3D_TRACE_SPAN("test", "outer_task");
                pool.parallelFor(0, 6, [](int b, int e) {
                    for (int i = b; i < e; ++i)
                        F3D_TRACE_SPAN("test", "inner_tile");
                });
            })));
    }
    const auto tiles = spansNamed(tracer.snapshot(), "inner_tile");
    ASSERT_EQ(tiles.size(), 6u);
    for (const obs::TraceEvent &ev : tiles)
        EXPECT_EQ(ev.requestId, 9u);
}

TEST_F(FlightRecorderTest, ScopedSpansLinkParentChild)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(true);
    {
        F3D_TRACE_SPAN("test", "outer");
        F3D_TRACE_SPAN("test", "inner");
    }
    const auto events = tracer.snapshot();
    const auto outer = spansNamed(events, "outer");
    const auto inner = spansNamed(events, "inner");
    ASSERT_EQ(outer.size(), 1u);
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_NE(outer[0].spanId, 0u);
    EXPECT_EQ(inner[0].parentId, outer[0].spanId);
    EXPECT_EQ(outer[0].parentId, 0u);
}

TEST_F(FlightRecorderTest, JoinedThreadSpansSurviveIntoDump)
{
    // Flush-at-thread-exit audit: a worker records spans and exits
    // *before* the dump is taken; its buffer must still be serialized.
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(true);
    std::thread worker([] { F3D_TRACE_SPAN("test", "ephemeral_thread"); });
    worker.join();

    ASSERT_EQ(spansNamed(tracer.snapshot(), "ephemeral_thread").size(), 1u);
    std::ostringstream os;
    tracer.writeChromeTrace(os);
    EXPECT_NE(os.str().find("ephemeral_thread"), std::string::npos)
        << "joined thread's spans missing from the Chrome dump";
}

// --- FlightRecorder ring -------------------------------------------------

TEST_F(FlightRecorderTest, RingWrapsKeepingRecentHistory)
{
    obs::FlightRecorder &flight = obs::FlightRecorder::instance();
    obs::Tracer &tracer = obs::Tracer::instance();
    // Tracer bit off: events reach only the flight ring.
    const std::size_t n = obs::FlightRecorder::kRingCapacity + 500;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t t = tracer.nowNs();
        tracer.recordArg("wrap", "ev", t, t, i);
    }
    EXPECT_GE(flight.recorded(), static_cast<std::uint64_t>(n));

    std::ostringstream os;
    flight.snapshotJson(os, "wrap_test");
    const std::string json = os.str();
    // The newest event survives; the oldest was overwritten.
    EXPECT_NE(json.find("\"value\":" + std::to_string(n - 1)),
              std::string::npos);
    EXPECT_EQ(json.find("\"value\":0,"), std::string::npos);
    // At most one ring's worth of this thread's events is retained.
    std::size_t count = 0;
    for (std::size_t at = json.find("\"cat\":\"wrap\"");
         at != std::string::npos; at = json.find("\"cat\":\"wrap\"", at + 1))
        ++count;
    EXPECT_LE(count, obs::FlightRecorder::kRingCapacity);
    EXPECT_GT(count, 0u);
}

TEST_F(FlightRecorderTest, DumpWritesFileAndCapsStorm)
{
    obs::FlightRecorder &flight = obs::FlightRecorder::instance();
    const std::string dir = scratchDir("dumpcap");
    flight.setDumpDir(dir);

    const std::uint64_t t = obs::Tracer::instance().nowNs();
    obs::Tracer::instance().recordArg("boom", "precrash", t, t, 13);
    flight.triggerDump("unit test!"); // token-sanitized filename
    EXPECT_EQ(flight.dumps(), 1u);
    EXPECT_EQ(flight.lastReason(), "unit test!");
    EXPECT_NE(flight.lastSnapshot().find("precrash"), std::string::npos);

    bool found = false;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.path().filename().string().rfind("flight_1_", 0) == 0)
            found = true;
    EXPECT_TRUE(found) << "no flight_1_* dump file in " << dir;

    // A dump storm is capped: the black box must not flood the disk.
    for (int i = 0; i < 20; ++i)
        flight.triggerDump("storm");
    EXPECT_EQ(flight.dumps(), 8u);
    EXPECT_EQ(flight.suppressedDumps(), 13u);
}

TEST_F(FlightRecorderTest, RecorderDisabledRecordsNothing)
{
    obs::FlightRecorder &flight = obs::FlightRecorder::instance();
    flight.setEnabled(false);
    const std::uint64_t before = flight.recorded();
    const std::uint64_t t = obs::Tracer::instance().nowNs();
    obs::Tracer::instance().record("off", "ev", t, t);
    EXPECT_EQ(flight.recorded(), before);
    flight.setEnabled(true);
}

// --- SloMonitor (deterministic clock) ------------------------------------

TEST_F(FlightRecorderTest, SloLatencyBurnBreaches)
{
    obs::SloConfig cfg;
    cfg.enabled = true;
    cfg.targetP99Ms = 10.0;
    cfg.latencyBudget = 0.01;
    cfg.windowSeconds = 1.0;
    cfg.burnThreshold = 2.0;
    cfg.minWindowRequests = 5;
    std::vector<obs::SloWindowReport> reports;
    obs::SloMonitor monitor(
        cfg, [&reports](const obs::SloWindowReport &r) { reports.push_back(r); });

    // 10 requests in the window, 5 over target: over-fraction 0.5,
    // burn 0.5 / 0.01 = 50 >> 2.
    const std::uint64_t giga = 1000000000ull;
    for (int i = 0; i < 10; ++i) {
        const bool slow = i % 2 == 0;
        monitor.recordAt(static_cast<std::uint64_t>(i) * giga / 20,
                         slow ? 100.0 : 1.0, false,
                         static_cast<std::uint64_t>(i + 1));
    }
    // First sample past the window edge closes it.
    monitor.recordAt(giga + giga / 10, 1.0, false, 99);
    ASSERT_EQ(monitor.windowsClosed(), 1u);
    EXPECT_EQ(monitor.breaches(), 1u);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(reports[0].breached);
    EXPECT_EQ(reports[0].requests, 10u);
    EXPECT_EQ(reports[0].overTarget, 5u);
    EXPECT_GE(reports[0].latencyBurn, 2.0);
    EXPECT_EQ(reports[0].worstRequestId, 9u); // latest of the tied maxima
    EXPECT_DOUBLE_EQ(reports[0].worstLatencyMs, 100.0);
    EXPECT_GE(reports[0].p99Ms, 90.0);
}

TEST_F(FlightRecorderTest, SloErrorBurnBreaches)
{
    obs::SloConfig cfg;
    cfg.enabled = true;
    cfg.targetP99Ms = 1000.0; // latency never over target
    cfg.errorBudget = 0.01;
    cfg.windowSeconds = 1.0;
    cfg.minWindowRequests = 5;
    std::vector<obs::SloWindowReport> reports;
    obs::SloMonitor monitor(
        cfg, [&reports](const obs::SloWindowReport &r) { reports.push_back(r); });

    const std::uint64_t giga = 1000000000ull;
    for (int i = 0; i < 10; ++i)
        monitor.recordAt(static_cast<std::uint64_t>(i) * giga / 20, 1.0,
                         /*error=*/i < 3, static_cast<std::uint64_t>(i + 1));
    monitor.closeWindow();
    ASSERT_EQ(monitor.windowsClosed(), 1u);
    EXPECT_EQ(monitor.breaches(), 1u);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].errors, 3u);
    EXPECT_GE(reports[0].errorBurn, 2.0);
}

TEST_F(FlightRecorderTest, SloSmallWindowNeverBreaches)
{
    obs::SloConfig cfg;
    cfg.enabled = true;
    cfg.targetP99Ms = 0.001; // everything over target...
    cfg.minWindowRequests = 20;
    int breaches = 0;
    obs::SloMonitor monitor(
        cfg, [&breaches](const obs::SloWindowReport &) { ++breaches; });
    for (int i = 0; i < 5; ++i) // ...but only 5 requests
        monitor.recordAt(static_cast<std::uint64_t>(i), 100.0, true);
    monitor.closeWindow();
    EXPECT_EQ(monitor.windowsClosed(), 1u);
    EXPECT_EQ(monitor.breaches(), 0u);
    EXPECT_EQ(breaches, 0);
}

TEST_F(FlightRecorderTest, SloHealthyWindowNoBreach)
{
    obs::SloConfig cfg;
    cfg.enabled = true;
    cfg.targetP99Ms = 50.0;
    cfg.minWindowRequests = 5;
    obs::SloMonitor monitor(cfg, nullptr);
    for (int i = 0; i < 100; ++i)
        monitor.recordAt(static_cast<std::uint64_t>(i) * 1000000ull, 5.0,
                         false);
    monitor.closeWindow();
    EXPECT_EQ(monitor.windowsClosed(), 1u);
    EXPECT_EQ(monitor.breaches(), 0u);
    EXPECT_EQ(monitor.lastWindow().overTarget, 0u);
}

// --- Server integration ---------------------------------------------------

TEST_F(FlightRecorderTest, WorkerExceptionTriggersDumpWithRequestSpans)
{
    const std::string dir = scratchDir("chaos");
    obs::FlightRecorder::instance().setDumpDir(dir);
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec(
        "serve.dispatch.throw=once"));

    serve::ModelRegistry registry(/*occupancy_resolution=*/8);
    registry.add("m", std::make_unique<nerf::NerfModel>(tinyModelConfig(), 7));
    serve::ServeConfig sc;
    sc.renderThreads = 1;
    serve::RenderServer server(registry, sc);

    serve::RenderRequest req;
    req.model = "m";
    req.camera = testCamera();
    const serve::RenderResponse r = server.submit(req).get();
    server.shutdown();

    EXPECT_EQ(r.outcome, serve::Outcome::failedInternal);
    // Both the fault fire and the worker catch trigger the black box.
    EXPECT_GE(obs::FlightRecorder::instance().dumps(), 1u);
    const std::string snap = obs::FlightRecorder::instance().lastSnapshot();
    EXPECT_NE(snap.find("\"req\":1"), std::string::npos)
        << "dump lacks the offending request's spans";
    bool wrote_file = false;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.file_size() > 0)
            wrote_file = true;
    EXPECT_TRUE(wrote_file);
}

TEST_F(FlightRecorderTest, ForcedSloBreachDumpsFlightRecorder)
{
    serve::ModelRegistry registry(/*occupancy_resolution=*/8);
    registry.add("m", std::make_unique<nerf::NerfModel>(tinyModelConfig(), 7));
    serve::ServeConfig sc;
    sc.renderThreads = 1;
    sc.slo.enabled = true;
    sc.slo.targetP99Ms = 0.0001; // every render is over target
    sc.slo.windowSeconds = 0.02;
    sc.slo.minWindowRequests = 1;
    serve::RenderServer server(registry, sc);

    for (int i = 0; i < 6; ++i) {
        serve::RenderRequest req;
        req.model = "m";
        req.camera = testCamera();
        ASSERT_EQ(server.submit(req).get().outcome,
                  serve::Outcome::renderedFull);
    }
    server.drain();
    ASSERT_NE(server.slo(), nullptr);
    server.shutdown(); // closes the final partial window
    EXPECT_GE(server.slo()->windowsClosed(), 1u);
    EXPECT_GE(server.slo()->breaches(), 1u);
    EXPECT_GE(obs::FlightRecorder::instance().dumps(), 1u);
    EXPECT_EQ(obs::FlightRecorder::instance().lastReason(), "slo_breach");
    EXPECT_NE(obs::FlightRecorder::instance().lastSnapshot().find("\"req\":"),
              std::string::npos);
}

TEST_F(FlightRecorderTest, TracedServerRequestsReassembleWithCoverage)
{
    // The in-process version of the `f3d_trace --check` CI gate: every
    // completed request forms one tree rooted at the "request" span,
    // and its direct children account for >= 90 % of the latency.
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(true);

    serve::ModelRegistry registry(/*occupancy_resolution=*/8);
    registry.add("m", std::make_unique<nerf::NerfModel>(tinyModelConfig(), 7));
    serve::ServeConfig sc;
    sc.renderThreads = 2;
    serve::RenderServer server(registry, sc);

    constexpr int kRequests = 6;
    std::vector<std::future<serve::RenderResponse>> futures;
    for (int i = 0; i < kRequests; ++i) {
        serve::RenderRequest req;
        req.model = "m";
        req.camera = testCamera();
        futures.push_back(server.submit(req));
    }
    for (auto &f : futures)
        EXPECT_FALSE(serve::isRejected(f.get().outcome));
    server.shutdown();

    // Reassemble per-request trees from the snapshot.
    std::map<std::uint64_t, std::vector<obs::TraceEvent>> by_request;
    for (const obs::TraceEvent &ev : tracer.snapshot())
        if (ev.requestId != 0)
            by_request[ev.requestId].push_back(ev);
    ASSERT_EQ(by_request.size(), static_cast<std::size_t>(kRequests));

    for (const auto &[req_id, events] : by_request) {
        const obs::TraceEvent *root = nullptr;
        int roots = 0;
        for (const obs::TraceEvent &ev : events) {
            if (std::string(ev.name) == "request") {
                ++roots;
                root = &ev;
            }
        }
        ASSERT_EQ(roots, 1) << "request " << req_id
                            << " must have exactly one root span";
        ASSERT_NE(root, nullptr);
        EXPECT_EQ(root->parentId, 0u);
        const double duration =
            static_cast<double>(root->t1Ns - root->t0Ns);
        ASSERT_GT(duration, 0.0);

        // Union of the root's direct children, clipped to the root.
        std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
        for (const obs::TraceEvent &ev : events) {
            if (ev.parentId != root->spanId)
                continue;
            const std::uint64_t b = std::max(ev.t0Ns, root->t0Ns);
            const std::uint64_t e = std::min(ev.t1Ns, root->t1Ns);
            if (e > b)
                intervals.emplace_back(b, e);
        }
        std::sort(intervals.begin(), intervals.end());
        double covered = 0.0;
        std::uint64_t hi = 0;
        for (const auto &[b, e] : intervals) {
            if (e <= hi)
                continue;
            covered += static_cast<double>(e - std::max(b, hi));
            hi = e;
        }
        EXPECT_GE(covered / duration, 0.9)
            << "request " << req_id << " attributes only "
            << 100.0 * covered / duration << "% of its latency";
    }
}

} // namespace
