/**
 * @file
 * Batched-vs-scalar field-evaluation bench: samples/sec of the scalar
 * forwardPoint loop against the SoA forwardBatch core at batch sizes
 * 1/32/256/2048, on the default bench model. Prints the usual table
 * plus one machine-readable JSON summary line (prefixed "JSON:") and
 * exits non-zero if the batched path is slower than scalar at batch
 * 256 — the CI smoke gate for the GEMM-shaped pipeline.
 *
 * Usage: bench_batch_eval [--quick] [samples_per_config]
 *
 *  --quick  reduce the per-configuration sample budget for CI smoke
 *           runs (the speedup, not the absolute rate, is the gate).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "nerf/nerf_model.h"

using namespace fusion3d;

namespace
{

struct EvalPoint
{
    std::size_t batch;
    double scalarSps;
    double batchedSps;
    double speedup;
};

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

EvalPoint
measure(const nerf::NerfModel &model, std::size_t batch, std::size_t budget)
{
    Pcg32 rng(2026);
    std::vector<Vec3f> pos(batch), dirs(batch);
    for (std::size_t j = 0; j < batch; ++j) {
        pos[j] = clamp(rng.nextVec3(), 0.01f, 0.99f);
        dirs[j] = rng.nextUnitVector();
    }

    const std::size_t reps = std::max<std::size_t>(1, budget / batch);
    std::vector<float> sigmas(batch);
    std::vector<Vec3f> rgbs(batch);

    // Checksum keeps the optimizer from discarding the work; the two
    // paths are bit-exact, so it doubles as a cheap equivalence check.
    double sum_scalar = 0.0, sum_batched = 0.0;

    nerf::PointWorkspace pws = model.makeWorkspace();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep)
        for (std::size_t j = 0; j < batch; ++j)
            sum_scalar += model.forwardPoint(pos[j], dirs[j], pws).sigma;
    const double scalar_s = secondsSince(t0);

    nerf::NerfBatchWorkspace bws = model.makeBatchWorkspace(batch);
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
        model.forwardBatch(pos, dirs, bws, sigmas, rgbs);
        sum_batched += sigmas[rep % batch];
    }
    const double batched_s = secondsSince(t1);
    if (sum_scalar < 0.0 && sum_batched < 0.0) // sigmas are positive
        fatal("impossible checksum");

    EvalPoint p{};
    p.batch = batch;
    const double samples = static_cast<double>(reps * batch);
    p.scalarSps = samples / scalar_s;
    p.batchedSps = samples / batched_s;
    p.speedup = p.batchedSps / p.scalarSps;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t budget = 1u << 19;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::atoll(argv[i]) > 0)
            budget = static_cast<std::size_t>(std::atoll(argv[i]));
        else
            fatal("usage: %s [--quick] [samples_per_config]", argv[0]);
    }
    if (quick)
        budget = std::min<std::size_t>(budget, 1u << 16);

    const nerf::NerfModelConfig mc = bench::defaultPipeline().model;
    const nerf::NerfModel model(mc, 2024);

    bench::banner("Batched SoA field evaluation: samples/s vs batch size");
    std::printf("%-12s %16s %16s %10s\n", "batch", "scalar (sm/s)",
                "batched (sm/s)", "speedup");

    std::vector<EvalPoint> points;
    double speedup_256 = 0.0;
    for (const std::size_t batch : {std::size_t{1}, std::size_t{32},
                                    std::size_t{256}, std::size_t{2048}}) {
        points.push_back(measure(model, batch, budget));
        const EvalPoint &p = points.back();
        if (p.batch == 256)
            speedup_256 = p.speedup;
        std::printf("%-12zu %16.0f %16.0f %9.2fx\n", p.batch, p.scalarSps,
                    p.batchedSps, p.speedup);
    }
    bench::rule();

    std::string json = "{\"bench\":\"batch_eval\",\"quick\":" +
                       std::string(quick ? "true" : "false") +
                       ",\"samples_per_config\":" + std::to_string(budget) +
                       ",\"points\":[";
    char buf[192];
    for (std::size_t i = 0; i < points.size(); ++i) {
        const EvalPoint &p = points[i];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"batch\":%zu,\"scalar_sps\":%.0f,"
                      "\"batched_sps\":%.0f,\"speedup\":%.3f}",
                      i ? "," : "", p.batch, p.scalarSps, p.batchedSps,
                      p.speedup);
        json += buf;
    }
    std::snprintf(buf, sizeof(buf), "],\"speedup_256\":%.3f}", speedup_256);
    json += buf;
    std::printf("JSON: %s\n", json.c_str());

    if (speedup_256 < 1.0) {
        std::fprintf(stderr,
                     "FAIL: batched path slower than scalar at batch 256 "
                     "(speedup %.3fx < 1.0x)\n",
                     speedup_256);
        return 1;
    }
    return 0;
}
