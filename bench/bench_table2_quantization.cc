/**
 * @file
 * Regenerates Table II: rendering quality when the training weights are
 * fake-quantized to INT8 every N iterations. The paper reports (on the
 * full-scale NeRF-Synthetic setup): never 31.7 dB, every 1000 iters
 * 30.1 dB (-1.6), every 200 iters 26.0 dB (-5.7), every iteration not
 * convergent. This bench runs the scaled-down functional pipeline; the
 * monotonic degradation and the collapse at per-iteration quantization
 * are the reproduced shape.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "common/simd.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"

using namespace fusion3d;

namespace
{

double
trainWithQuantization(const nerf::Dataset &data, int quantize_every, int iterations)
{
    nerf::PipelineConfig pc = bench::defaultPipeline();
    pc.model.grid.log2TableSize = 13;
    pc.sampler.maxSamplesPerRay = 32;
    nerf::NerfPipeline pipe(pc);

    nerf::TrainerConfig tc;
    tc.iterations = iterations;
    tc.raysPerBatch = 160;
    tc.quantizeEvery = quantize_every;
    tc.occupancyWarmup = 128;
    tc.occupancyUpdateEvery = 48;
    nerf::Trainer trainer(pipe, data, tc);
    return trainer.run().finalPsnr;
}

struct InferenceQuantRow
{
    const char *name;
    QuantMode mode;
    double psnr = 0.0;
};

/**
 * Post-training inference quantization: train once in fp32, then
 * re-evaluate the held-out PSNR with the serving weight image packed
 * to fp16 / INT8 (per-tensor symmetric scales, the serve-path
 * QuantMode). Unlike the fake-quantized *training* schedules above,
 * this is the Table II deployment question: how much quality does the
 * packed inference image give up against the fp32 master it was
 * quantized from? Expectation (paper Table 2): fp16 is visually
 * lossless (|delta| well under 0.5 dB), INT8 costs a moderate,
 * bounded amount.
 */
std::vector<InferenceQuantRow>
inferenceQuantPsnr(const nerf::Dataset &data, int iterations, double &fail)
{
    nerf::PipelineConfig pc = bench::defaultPipeline();
    pc.model.grid.log2TableSize = 13;
    pc.sampler.maxSamplesPerRay = 32;
    nerf::NerfPipeline pipe(pc);

    nerf::TrainerConfig tc;
    tc.iterations = iterations;
    tc.raysPerBatch = 160;
    tc.quantizeEvery = 0; // pure fp32 training
    tc.occupancyWarmup = 128;
    tc.occupancyUpdateEvery = 48;
    nerf::Trainer trainer(pipe, data, tc);
    trainer.run();

    std::vector<InferenceQuantRow> rows{
        {"fp32", QuantMode::fp32},
        {"fp16", QuantMode::fp16},
        {"int8", QuantMode::int8},
    };
    for (InferenceQuantRow &row : rows) {
        // Keep the fp32 masters so each mode quantizes from the same
        // trained weights rather than compounding.
        pipe.model().setInferenceQuant(row.mode, /*dropFp32=*/false);
        row.psnr = trainer.evalPsnr(1);
    }
    pipe.model().setInferenceQuant(QuantMode::fp32);

    // Gates: fp16 must be visually lossless vs the fp32 eval; INT8 may
    // cost PSNR but must stay in the same quality regime (the paper's
    // Table 2 deltas are single-digit dB on the full-scale setup).
    const double d16 = rows[1].psnr - rows[0].psnr;
    const double d8 = rows[2].psnr - rows[0].psnr;
    if (std::fabs(d16) > 0.5) {
        std::printf("FAIL: fp16 inference quant moved PSNR by %+.2f dB "
                    "(gate |delta| <= 0.5)\n",
                    d16);
        fail += 1.0;
    }
    if (d8 < -8.0 || d8 > 0.5) {
        std::printf("FAIL: int8 inference quant delta %+.2f dB outside "
                    "[-8.0, +0.5]\n",
                    d8);
        fail += 1.0;
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    const int iterations = argc > 1 ? std::atoi(argv[1]) : 500;
    bench::banner("Table II: rendering quality with INT8-quantized training models");

    // Two scenes keep the bench affordable; the paper averages eight.
    const std::vector<std::string> scene_names{"lego", "chair"};
    // Paper quantizes every {never, 1000, 200, 1} of 5000 iterations;
    // scaled to this run length the ratios are {never, 1/5, 1/25, 1}.
    const std::vector<std::pair<std::string, int>> schedules{
        {"Never", 0},
        {"Every N/5 iters", iterations / 5},
        {"Every N/25 iters", iterations / 25},
        {"Every iter", 1},
    };

    std::vector<double> mean_psnr(schedules.size(), 0.0);
    for (const std::string &name : scene_names) {
        const auto scene = scenes::makeSyntheticScene(name);
        scenes::DatasetConfig dc = scenes::syntheticRig(32);
        dc.reference.steps = 128;
        const nerf::Dataset data = scenes::makeDataset(*scene, dc);
        std::printf("scene %-10s:", name.c_str());
        for (std::size_t i = 0; i < schedules.size(); ++i) {
            const double p = trainWithQuantization(data, schedules[i].second, iterations);
            mean_psnr[i] += p / static_cast<double>(scene_names.size());
            std::printf("  %s=%.1f", schedules[i].first.c_str(), p);
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    bench::rule();
    std::printf("%-20s %12s %12s\n", "Quantization", "PSNR (dB)", "vs Never");
    bench::rule();
    for (std::size_t i = 0; i < schedules.size(); ++i) {
        std::printf("%-20s %12.1f %+12.1f\n", schedules[i].first.c_str(), mean_psnr[i],
                    mean_psnr[i] - mean_psnr[0]);
    }
    bench::rule();
    std::printf("Paper (5000 iters, 8 scenes): Never 31.7 | 1000-iter 30.1 (-1.6) | "
                "200-iter 26.0 (-5.7) | every iter: not convergent.\n");
    std::printf("Reproduced shape: monotonic degradation with quantization frequency;\n"
                "per-iteration INT8 quantization breaks convergence.\n");

    // Deployment-side companion: quality of the packed inference weight
    // image (serve-path QuantMode) against the fp32 master it was
    // quantized from, on a model trained without fake quantization.
    double fail = 0.0;
    bench::banner("Post-training inference quantization: held-out PSNR by QuantMode");
    const auto scene = scenes::makeSyntheticScene("lego");
    scenes::DatasetConfig dc = scenes::syntheticRig(32);
    dc.reference.steps = 128;
    const nerf::Dataset data = scenes::makeDataset(*scene, dc);
    const auto rows = inferenceQuantPsnr(data, iterations, fail);
    bench::rule();
    std::printf("%-10s %12s %12s\n", "QuantMode", "PSNR (dB)", "vs fp32");
    bench::rule();
    for (const auto &row : rows)
        std::printf("%-10s %12.2f %+12.2f\n", row.name, row.psnr,
                    row.psnr - rows[0].psnr);
    bench::rule();

    std::printf("JSON: {\"bench\":\"table2_quantization\",\"dispatch\":\"%s\","
                "\"iterations\":%d,\"train_quant_psnr\":[",
                simd::dispatchName(), iterations);
    for (std::size_t i = 0; i < schedules.size(); ++i)
        std::printf("%s{\"schedule\":\"%s\",\"psnr\":%.2f}", i > 0 ? "," : "",
                    schedules[i].first.c_str(), mean_psnr[i]);
    std::printf("],\"inference_quant_psnr\":[");
    for (std::size_t i = 0; i < rows.size(); ++i)
        std::printf("%s{\"quant\":\"%s\",\"psnr\":%.2f,\"delta_db\":%.2f}",
                    i > 0 ? "," : "", rows[i].name, rows[i].psnr,
                    rows[i].psnr - rows[0].psnr);
    std::printf("]}\n");
    return fail > 0.0 ? 1 : 0;
}
