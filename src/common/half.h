/**
 * @file
 * Software IEEE-754 binary16 ("half") arithmetic. The chip's inference
 * datapath and the FIEM multiplier (Technique T2-2) operate on halves;
 * the bit-level decomposition here is what the FIEM model consumes.
 */

#ifndef FUSION3D_COMMON_HALF_H_
#define FUSION3D_COMMON_HALF_H_

#include <cstdint>

namespace fusion3d
{

/**
 * IEEE-754 binary16 value stored in its raw 16-bit pattern:
 * 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
 * Conversions implement round-to-nearest-even exactly.
 */
class Half
{
  public:
    constexpr Half() = default;

    /** Convert from single precision with round-to-nearest-even. */
    static Half fromFloat(float f);

    /** Convert from double precision with round-to-nearest-even. */
    static Half fromDouble(double d);

    /** Reinterpret a raw bit pattern as a Half. */
    static constexpr Half
    fromBits(std::uint16_t b)
    {
        Half h;
        h.bits_ = b;
        return h;
    }

    /** Widen to single precision (exact). */
    float toFloat() const;

    constexpr std::uint16_t bits() const { return bits_; }
    constexpr std::uint16_t signBit() const { return bits_ >> 15; }
    /** Biased 5-bit exponent field. */
    constexpr std::uint16_t exponentField() const { return (bits_ >> 10) & 0x1f; }
    /** 10-bit stored mantissa (without the implicit leading one). */
    constexpr std::uint16_t mantissaField() const { return bits_ & 0x3ff; }

    constexpr bool isZero() const { return (bits_ & 0x7fff) == 0; }
    constexpr bool isSubnormal() const { return exponentField() == 0 && mantissaField() != 0; }
    constexpr bool isInf() const { return exponentField() == 0x1f && mantissaField() == 0; }
    constexpr bool isNan() const { return exponentField() == 0x1f && mantissaField() != 0; }

    /**
     * Full significand including the implicit bit: 11 bits for normal
     * numbers, the raw mantissa for subnormals.
     */
    constexpr std::uint32_t
    significand() const
    {
        if (exponentField() == 0)
            return mantissaField();
        return 0x400u | mantissaField();
    }

    /** Unbiased exponent of the significand interpreted as 1.m * 2^e. */
    constexpr int
    unbiasedExponent() const
    {
        if (exponentField() == 0)
            return -14; // subnormals share the minimum exponent
        return static_cast<int>(exponentField()) - 15;
    }

    constexpr bool operator==(const Half &o) const = default;

  private:
    std::uint16_t bits_ = 0;
};

/** Round-trip helper: quantize a float through binary16. */
inline float
roundToHalf(float f)
{
    return Half::fromFloat(f).toFloat();
}

/**
 * Correctly rounded binary16 addition: the double-precision sum of two
 * halves is exact (11-bit significands, bounded exponent range), so a
 * single round-to-nearest-even from double gives the IEEE result.
 */
inline Half
halfAdd(Half a, Half b)
{
    return Half::fromDouble(static_cast<double>(a.toFloat()) +
                            static_cast<double>(b.toFloat()));
}

/** Correctly rounded binary16 multiplication (same exactness argument:
 *  an 11x11-bit product fits double with room to spare). */
inline Half
halfMul(Half a, Half b)
{
    return Half::fromDouble(static_cast<double>(a.toFloat()) *
                            static_cast<double>(b.toFloat()));
}

/** Correctly rounded fused multiply-add in binary16: a*b + c with one
 *  final rounding, as the MLP engine's MAC units compute. */
inline Half
halfFma(Half a, Half b, Half c)
{
    return Half::fromDouble(static_cast<double>(a.toFloat()) *
                                static_cast<double>(b.toFloat()) +
                            static_cast<double>(c.toFloat()));
}

} // namespace fusion3d

#endif // FUSION3D_COMMON_HALF_H_
