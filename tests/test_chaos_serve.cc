/**
 * @file
 * Chaos tests of the hardened serving path, driven by the fault
 * injector: deploy retries with backoff, the per-model circuit breaker
 * (trip, fast-reject, half-open recovery), worker exceptions as
 * terminal outcomes, a mixed slow/throw chaos run where every submitted
 * request must still reach a terminal outcome (replayable per seed),
 * and stop() shedding the queued backlog instead of stranding waiters.
 * Expected to pass under -DFUSION3D_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "nerf/nerf_model.h"
#include "nerf/serialize.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"
#include "serve/scheduler.h"

namespace fusion3d::serve
{
namespace
{

nerf::NerfModelConfig
tinyModelConfig()
{
    nerf::NerfModelConfig cfg;
    cfg.grid.levels = 4;
    cfg.grid.featuresPerLevel = 2;
    cfg.grid.log2TableSize = 9;
    cfg.grid.baseResolution = 4;
    cfg.grid.maxResolution = 32;
    cfg.geoFeatures = 7;
    cfg.densityHidden = 16;
    cfg.colorHidden = 16;
    cfg.shDegree = 2;
    return cfg;
}

nerf::Camera
testCamera(int size = 16)
{
    return nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 35.0f, 20.0f, 45.0f,
                               size, size);
}

/** Every test starts and ends with the process-wide injector disarmed. */
class ChaosServeTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }

    /** A registry config with test-speed backoff/cooldown timings. */
    static RegistryConfig
    fastRegistryConfig()
    {
        RegistryConfig rc;
        rc.occupancyResolution = 8;
        rc.backoffInitialMs = 0.1;
        rc.backoffMaxMs = 1.0;
        return rc;
    }

    /** Save a tiny model artifact and return its path. */
    static std::string
    savedArtifact(const char *filename)
    {
        const nerf::NerfModel model(tinyModelConfig(), /*seed=*/31);
        const std::string path = testing::TempDir() + filename;
        EXPECT_TRUE(nerf::saveModel(model, path));
        return path;
    }
};

TEST_F(ChaosServeTest, DeployRetriesThroughTransientFault)
{
    const std::string path = savedArtifact("chaos_retry.f3dm");
    ModelRegistry registry(fastRegistryConfig());

    // First load attempt fails (injected), the retry succeeds.
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec("serve.load.io=once"));
    EXPECT_EQ(registry.addFromFile("m", path), nerf::LoadStatus::ok);
    EXPECT_NE(registry.find("m"), nullptr);
    EXPECT_EQ(registry.loadsSucceeded(), 1u);
    EXPECT_EQ(registry.loadsFailed(), 0u);
    EXPECT_EQ(registry.loadRetries(), 1u);
    EXPECT_EQ(registry.breakerTrips(), 0u);
    EXPECT_EQ(registry.breakerState("m"), BreakerState::closed);
}

TEST_F(ChaosServeTest, BreakerTripsFastRejectsAndRecovers)
{
    const std::string path = savedArtifact("chaos_breaker.f3dm");
    RegistryConfig rc = fastRegistryConfig();
    rc.loadMaxAttempts = 1; // no retries: each call is one attempt
    rc.breakerThreshold = 2;
    rc.breakerCooldownMs = 60.0;
    ModelRegistry registry(rc);

    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("serve.load.io=always"));

    // Two consecutive failures trip the breaker.
    EXPECT_EQ(registry.addFromFile("m", path), nerf::LoadStatus::ioError);
    EXPECT_EQ(registry.breakerState("m"), BreakerState::closed);
    EXPECT_EQ(registry.addFromFile("m", path), nerf::LoadStatus::ioError);
    EXPECT_EQ(registry.breakerState("m"), BreakerState::open);
    EXPECT_EQ(registry.breakerTrips(), 1u);
    EXPECT_EQ(registry.loadsFailed(), 2u);

    // Open breaker: rejected before the load path runs at all (the
    // fault point sees no new check).
    const std::uint64_t checks_before =
        FaultInjector::instance().checks("serve.load.io");
    EXPECT_EQ(registry.addFromFile("m", path), nerf::LoadStatus::ioError);
    EXPECT_EQ(FaultInjector::instance().checks("serve.load.io"), checks_before);
    EXPECT_EQ(registry.breakerOpenRejects(), 1u);

    // Cooldown elapses, storage heals: the half-open probe closes it.
    FaultInjector::instance().reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(registry.addFromFile("m", path), nerf::LoadStatus::ok);
    EXPECT_EQ(registry.breakerState("m"), BreakerState::closed);
    EXPECT_EQ(registry.loadsSucceeded(), 1u);
    EXPECT_NE(registry.find("m"), nullptr);

    // The breaker is per-model: "m"'s history never affected others.
    EXPECT_EQ(registry.breakerState("other"), BreakerState::closed);
}

TEST_F(ChaosServeTest, HalfOpenProbeFailureReopensBreaker)
{
    const std::string path = savedArtifact("chaos_reopen.f3dm");
    RegistryConfig rc = fastRegistryConfig();
    rc.loadMaxAttempts = 3;
    rc.breakerThreshold = 1; // first failed call trips it
    rc.breakerCooldownMs = 20.0;
    ModelRegistry registry(rc);

    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("serve.load.io=always"));
    EXPECT_EQ(registry.addFromFile("m", path), nerf::LoadStatus::ioError);
    EXPECT_EQ(registry.breakerState("m"), BreakerState::open);

    // After the cooldown the probe gets exactly ONE attempt (no
    // retries), fails, and the breaker re-opens.
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    const std::uint64_t checks_before =
        FaultInjector::instance().checks("serve.load.io");
    EXPECT_EQ(registry.addFromFile("m", path), nerf::LoadStatus::ioError);
    EXPECT_EQ(FaultInjector::instance().checks("serve.load.io"),
              checks_before + 1);
    EXPECT_EQ(registry.breakerState("m"), BreakerState::open);
    EXPECT_EQ(registry.breakerTrips(), 2u);
}

TEST_F(ChaosServeTest, WorkerExceptionIsTerminalOutcome)
{
    ModelRegistry registry(8);
    registry.add("m", std::make_unique<nerf::NerfModel>(tinyModelConfig(), 5));

    ServeConfig sc;
    sc.renderThreads = 1;
    sc.render.sampler.maxSamplesPerRay = 8;
    RenderServer server(registry, sc);

    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("serve.dispatch.throw=once"));

    RenderRequest req;
    req.model = "m";
    req.camera = testCamera();
    const RenderResponse failed = server.submit(req).get();
    EXPECT_EQ(failed.outcome, Outcome::failedInternal);
    EXPECT_TRUE(failed.image.empty());
    EXPECT_EQ(server.stats().failed(), 1u);

    // The worker survived its exception: the next request renders.
    const RenderResponse ok = server.submit(req).get();
    EXPECT_EQ(ok.outcome, Outcome::renderedFull);

    server.drain();
    EXPECT_EQ(server.stats().completed(), server.stats().submitted());
}

TEST_F(ChaosServeTest, ChaosMixEveryRequestTerminatesReplayably)
{
    ModelRegistry registry(8);
    registry.add("m", std::make_unique<nerf::NerfModel>(tinyModelConfig(), 5));

    constexpr int kRequests = 40;
    const auto runChaos = [&](std::uint64_t seed) {
        ASSERT_TRUE(FaultInjector::instance().configureFromSpec(
            strprintf("serve.dispatch.slow=p0.4;serve.dispatch.throw=p0.25;"
                      "seed=%llu",
                      static_cast<unsigned long long>(seed))));

        ServeConfig sc;
        sc.renderThreads = 2;
        sc.queueCapacity = 64; // >= kRequests: every request is admitted
        sc.render.sampler.maxSamplesPerRay = 8;
        sc.faultSlowRenderMs = 1.0;
        RenderServer server(registry, sc);

        std::vector<std::future<RenderResponse>> futures;
        futures.reserve(kRequests);
        for (int i = 0; i < kRequests; ++i) {
            RenderRequest req;
            req.model = "m";
            req.camera = testCamera();
            if (i % 4 == 3) // every 4th request races a tight deadline
                req.deadline = Clock::now() + std::chrono::milliseconds(3);
            futures.push_back(server.submit(req));
        }

        // The core chaos invariant: every submitted request reaches a
        // terminal outcome — no future hangs, whatever fired.
        int failed = 0;
        for (auto &f : futures) {
            ASSERT_EQ(f.wait_for(std::chrono::seconds(60)),
                      std::future_status::ready);
            failed += f.get().outcome == Outcome::failedInternal ? 1 : 0;
        }
        server.drain();
        EXPECT_EQ(server.stats().completed(), server.stats().submitted());
        EXPECT_EQ(server.stats().submitted(),
                  static_cast<std::uint64_t>(kRequests));
        EXPECT_EQ(server.stats().failed(), static_cast<std::uint64_t>(failed));

        // Every admitted request consumed exactly one decision per
        // point, in sequence order — so the fire totals are a pure
        // function of the seed.
        EXPECT_EQ(FaultInjector::instance().checks("serve.dispatch.throw"),
                  static_cast<std::uint64_t>(kRequests));
    };

    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        SCOPED_TRACE(seed);
        runChaos(seed);
        const std::uint64_t slow_fires =
            FaultInjector::instance().fires("serve.dispatch.slow");
        const std::uint64_t throw_fires =
            FaultInjector::instance().fires("serve.dispatch.throw");

        // Replay with the same seed: identical fault schedule.
        runChaos(seed);
        EXPECT_EQ(FaultInjector::instance().fires("serve.dispatch.slow"),
                  slow_fires);
        EXPECT_EQ(FaultInjector::instance().fires("serve.dispatch.throw"),
                  throw_fires);
    }
}

TEST_F(ChaosServeTest, StopShedsQueuedBacklogPromptly)
{
    ModelRegistry registry(8);
    registry.add("m", std::make_unique<nerf::NerfModel>(tinyModelConfig(), 5));

    // Every render stalls 20 ms and only one runs at a time, so the
    // backlog is still queued when stop() lands.
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec(
        "serve.dispatch.slow=always"));

    ServeConfig sc;
    sc.renderThreads = 1;
    sc.maxInFlight = 1;
    sc.queueCapacity = 64;
    sc.render.sampler.maxSamplesPerRay = 8;
    sc.faultSlowRenderMs = 20.0;
    RenderServer server(registry, sc);

    constexpr int kRequests = 12;
    std::vector<std::future<RenderResponse>> futures;
    for (int i = 0; i < kRequests; ++i) {
        RenderRequest req;
        req.model = "m";
        req.camera = testCamera();
        futures.push_back(server.submit(req));
    }

    server.stop();

    int shed_shutdown = 0;
    for (auto &f : futures) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(60)),
                  std::future_status::ready);
        shed_shutdown +=
            f.get().outcome == Outcome::rejectedShutdown ? 1 : 0;
    }
    EXPECT_GT(shed_shutdown, 0)
        << "a 12-deep backlog behind 20 ms renders must shed on stop()";
    EXPECT_EQ(server.stats().completed(), server.stats().submitted());
    EXPECT_EQ(server.stats().count(Outcome::rejectedShutdown),
              static_cast<std::uint64_t>(shed_shutdown));

    // The server is stopped: later submissions resolve immediately.
    RenderRequest late;
    late.model = "m";
    late.camera = testCamera();
    EXPECT_EQ(server.submit(late).get().outcome, Outcome::rejectedShutdown);
}

TEST_F(ChaosServeTest, ReloadOnDemandUnderFaultFailsInternalTripsBreaker)
{
    // An evicted model whose artifact goes bad must fail requests
    // *internally* (bounded, no crash, no hang), trip its breaker, and
    // keep the rest of the fleet serving.
    const std::string path = savedArtifact("chaos_evict_reload.f3dm");
    const std::string filler = savedArtifact("chaos_evict_filler.f3dm");

    RegistryConfig rc = fastRegistryConfig();
    rc.loadMaxAttempts = 2;
    rc.breakerThreshold = 2;
    rc.breakerCooldownMs = 30.0;
    ModelRegistry probe(rc);
    ASSERT_EQ(probe.addFromFile("size0000", path), nerf::LoadStatus::ok);
    rc.memoryBudgetBytes = probe.residentBytes() + 4096; // fits ONE model

    ModelRegistry registry(rc);
    ASSERT_EQ(registry.addFromFile("evicted0", path), nerf::LoadStatus::ok);
    ASSERT_EQ(registry.addFromFile("resident", filler), nerf::LoadStatus::ok);
    ASSERT_EQ(registry.find("evicted0"), nullptr)
        << "a one-model budget must evict the idle first deploy";
    ASSERT_EQ(registry.evictions(), 1u);

    ServeConfig sc;
    sc.renderThreads = 1;
    sc.render.sampler.maxSamplesPerRay = 8;
    RenderServer server(registry, sc);

    // Storage breaks; every reload-on-demand attempt fails.
    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("serve.load.io=always"));

    RenderRequest req;
    req.model = "evicted0";
    req.camera = testCamera();
    EXPECT_EQ(server.submit(req).get().outcome, Outcome::failedInternal);
    EXPECT_EQ(server.submit(req).get().outcome, Outcome::failedInternal);
    EXPECT_EQ(registry.breakerState("evicted0"), BreakerState::open);
    EXPECT_GE(registry.breakerTrips(), 1u);
    EXPECT_EQ(registry.reloads(), 0u);

    // The resident model is unaffected by its neighbour's broken
    // artifact (per-model breaker, per-request resolution).
    RenderRequest ok;
    ok.model = "resident";
    ok.camera = testCamera();
    EXPECT_EQ(server.submit(ok).get().outcome, Outcome::renderedFull);

    // Storage heals, the cooldown elapses: the half-open probe reloads
    // the evicted model and requests flow again.
    FaultInjector::instance().reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_EQ(server.submit(req).get().outcome, Outcome::renderedFull);
    EXPECT_EQ(registry.reloads(), 1u);
    EXPECT_EQ(registry.breakerState("evicted0"), BreakerState::closed);

    server.drain();
    EXPECT_EQ(server.stats().completed(), server.stats().submitted());
}

TEST_F(ChaosServeTest, HotSwapUnderFaultKeepsOldVersionServing)
{
    const std::string path_old = savedArtifact("chaos_swap_old.f3dm");
    // A different-weights artifact for the eventual successful swap.
    const nerf::NerfModel v2(tinyModelConfig(), /*seed=*/77);
    const std::string path_new = testing::TempDir() + "chaos_swap_new.f3dm";
    ASSERT_TRUE(nerf::saveModel(v2, path_new));

    RegistryConfig rc = fastRegistryConfig();
    rc.loadMaxAttempts = 2;
    ModelRegistry registry(rc);
    ASSERT_EQ(registry.addFromFile("live", path_old), nerf::LoadStatus::ok);

    ServeConfig sc;
    sc.renderThreads = 1;
    sc.render.sampler.maxSamplesPerRay = 8;
    RenderServer server(registry, sc);

    RenderRequest req;
    req.model = "live";
    req.camera = testCamera();
    const Image before = server.submit(req).get().image;
    ASSERT_FALSE(before.empty());

    // The swap's load fails (injected): the live entry must be
    // untouched and keep serving the exact old frames.
    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("serve.load.io=always"));
    EXPECT_EQ(registry.swap("live", path_new), nerf::LoadStatus::ioError);
    EXPECT_EQ(registry.swaps(), 0u);

    const RenderResponse resp = server.submit(req).get();
    EXPECT_EQ(resp.outcome, Outcome::renderedFull);
    ASSERT_EQ(resp.image.width(), before.width());
    for (int y = 0; y < before.height(); ++y)
        for (int x = 0; x < before.width(); ++x) {
            ASSERT_EQ(resp.image.at(x, y).x, before.at(x, y).x);
            ASSERT_EQ(resp.image.at(x, y).y, before.at(x, y).y);
            ASSERT_EQ(resp.image.at(x, y).z, before.at(x, y).z);
        }

    // Storage heals: the swap lands and the served frame changes.
    FaultInjector::instance().reset();
    EXPECT_EQ(registry.swap("live", path_new), nerf::LoadStatus::ok);
    EXPECT_EQ(registry.swaps(), 1u);
    const Image after = server.submit(req).get().image;
    bool identical = true;
    for (int y = 0; identical && y < before.height(); ++y)
        for (int x = 0; identical && x < before.width(); ++x)
            identical = after.at(x, y).x == before.at(x, y).x &&
                        after.at(x, y).y == before.at(x, y).y &&
                        after.at(x, y).z == before.at(x, y).z;
    EXPECT_FALSE(identical) << "a successful swap must change the weights";

    server.drain();
    EXPECT_EQ(server.stats().completed(), server.stats().submitted());
}

TEST_F(ChaosServeTest, EvictionReloadChaosReplaysExactlyPerSeed)
{
    // Two models sharing a one-model budget ping-pong evict each other,
    // so nearly every request is a reload-on-demand — under a seeded
    // probabilistic load fault. Outcomes must stay in {renderedFull,
    // failedInternal}, and the whole fault schedule must replay
    // exactly per seed.
    const std::string paths[2] = {savedArtifact("chaos_pp_0.f3dm"),
                                  savedArtifact("chaos_pp_1.f3dm")};

    RegistryConfig rc = fastRegistryConfig();
    rc.loadMaxAttempts = 2;
    rc.breakerThreshold = 1000; // keep time-based cooldown out of replay
    ModelRegistry probe(rc);
    ASSERT_EQ(probe.addFromFile("size0000", paths[0]), nerf::LoadStatus::ok);
    rc.memoryBudgetBytes = probe.residentBytes() + 4096;

    constexpr int kRequests = 20;
    const auto runChaos = [&](std::uint64_t seed, std::uint64_t *fires_out) {
        ASSERT_TRUE(FaultInjector::instance().configureFromSpec(
            strprintf("serve.load.io=p0.3;seed=%llu",
                      static_cast<unsigned long long>(seed))));

        ModelRegistry registry(rc);
        // Load both once, faults off for the setup... the spec is
        // already armed, so route the setup through the retry path and
        // require eventual success (p0.3^2 per call can still fail —
        // retry the deploy until it lands; checks stay seed-ordered).
        for (int m = 0; m < 2; ++m) {
            nerf::LoadStatus st = nerf::LoadStatus::ioError;
            for (int tries = 0; st != nerf::LoadStatus::ok && tries < 16;
                 ++tries)
                st = registry.addFromFile(m == 0 ? "pp000000" : "pp000001",
                                          paths[m]);
            ASSERT_EQ(st, nerf::LoadStatus::ok);
        }

        ServeConfig sc;
        sc.renderThreads = 1;
        sc.maxInFlight = 1;
        sc.render.sampler.maxSamplesPerRay = 8;
        RenderServer server(registry, sc);

        int failed = 0;
        for (int i = 0; i < kRequests; ++i) {
            RenderRequest req;
            req.model = i % 2 == 0 ? "pp000000" : "pp000001";
            req.camera = testCamera();
            const RenderResponse r = server.submit(req).get();
            ASSERT_TRUE(r.outcome == Outcome::renderedFull ||
                        r.outcome == Outcome::failedInternal)
                << outcomeName(r.outcome);
            failed += r.outcome == Outcome::failedInternal ? 1 : 0;
        }
        server.drain();
        EXPECT_EQ(server.stats().completed(), server.stats().submitted());
        EXPECT_EQ(server.stats().failed(), static_cast<std::uint64_t>(failed));
        EXPECT_GT(registry.reloads() + static_cast<std::uint64_t>(failed), 0u)
            << "the ping-pong budget must force reload-on-demand traffic";
        *fires_out = FaultInjector::instance().fires("serve.load.io");
    };

    for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
        SCOPED_TRACE(seed);
        std::uint64_t fires_first = 0, fires_replay = 0;
        runChaos(seed, &fires_first);
        runChaos(seed, &fires_replay);
        // Same seed, same sequential request schedule: the exact same
        // faults fire at the exact same decision points.
        EXPECT_EQ(fires_replay, fires_first);
    }
}

TEST_F(ChaosServeTest, RegistryMetricsAreExported)
{
    const std::string path = savedArtifact("chaos_metrics.f3dm");
    ModelRegistry registry(fastRegistryConfig());
    EXPECT_EQ(registry.addFromFile("m", path), nerf::LoadStatus::ok);

    std::ostringstream os;
    obs::MetricsRegistry::global().exportJsonLine(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("serve.registry.models"), std::string::npos) << json;
    EXPECT_NE(json.find("serve.registry.loads_ok"), std::string::npos) << json;
    EXPECT_NE(json.find("serve.registry.breaker_trips"), std::string::npos)
        << json;
}

} // namespace
} // namespace fusion3d::serve
