/**
 * @file
 * Regenerates Table II: rendering quality when the training weights are
 * fake-quantized to INT8 every N iterations. The paper reports (on the
 * full-scale NeRF-Synthetic setup): never 31.7 dB, every 1000 iters
 * 30.1 dB (-1.6), every 200 iters 26.0 dB (-5.7), every iteration not
 * convergent. This bench runs the scaled-down functional pipeline; the
 * monotonic degradation and the collapse at per-iteration quantization
 * are the reproduced shape.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"

using namespace fusion3d;

namespace
{

double
trainWithQuantization(const nerf::Dataset &data, int quantize_every, int iterations)
{
    nerf::PipelineConfig pc = bench::defaultPipeline();
    pc.model.grid.log2TableSize = 13;
    pc.sampler.maxSamplesPerRay = 32;
    nerf::NerfPipeline pipe(pc);

    nerf::TrainerConfig tc;
    tc.iterations = iterations;
    tc.raysPerBatch = 160;
    tc.quantizeEvery = quantize_every;
    tc.occupancyWarmup = 128;
    tc.occupancyUpdateEvery = 48;
    nerf::Trainer trainer(pipe, data, tc);
    return trainer.run().finalPsnr;
}

} // namespace

int
main(int argc, char **argv)
{
    const int iterations = argc > 1 ? std::atoi(argv[1]) : 500;
    bench::banner("Table II: rendering quality with INT8-quantized training models");

    // Two scenes keep the bench affordable; the paper averages eight.
    const std::vector<std::string> scene_names{"lego", "chair"};
    // Paper quantizes every {never, 1000, 200, 1} of 5000 iterations;
    // scaled to this run length the ratios are {never, 1/5, 1/25, 1}.
    const std::vector<std::pair<std::string, int>> schedules{
        {"Never", 0},
        {"Every N/5 iters", iterations / 5},
        {"Every N/25 iters", iterations / 25},
        {"Every iter", 1},
    };

    std::vector<double> mean_psnr(schedules.size(), 0.0);
    for (const std::string &name : scene_names) {
        const auto scene = scenes::makeSyntheticScene(name);
        scenes::DatasetConfig dc = scenes::syntheticRig(32);
        dc.reference.steps = 128;
        const nerf::Dataset data = scenes::makeDataset(*scene, dc);
        std::printf("scene %-10s:", name.c_str());
        for (std::size_t i = 0; i < schedules.size(); ++i) {
            const double p = trainWithQuantization(data, schedules[i].second, iterations);
            mean_psnr[i] += p / static_cast<double>(scene_names.size());
            std::printf("  %s=%.1f", schedules[i].first.c_str(), p);
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    bench::rule();
    std::printf("%-20s %12s %12s\n", "Quantization", "PSNR (dB)", "vs Never");
    bench::rule();
    for (std::size_t i = 0; i < schedules.size(); ++i) {
        std::printf("%-20s %12.1f %+12.1f\n", schedules[i].first.c_str(), mean_psnr[i],
                    mean_psnr[i] - mean_psnr[0]);
    }
    bench::rule();
    std::printf("Paper (5000 iters, 8 scenes): Never 31.7 | 1000-iter 30.1 (-1.6) | "
                "200-iter 26.0 (-5.7) | every iter: not convergent.\n");
    std::printf("Reproduced shape: monotonic degradation with quantization frequency;\n"
                "per-iteration INT8 quantization breaks convergence.\n");
    return 0;
}
