/**
 * @file
 * Chip-count scaling study (Fig. 8 upper row / Sec. V-A): the MoE
 * workload assignment adapts automatically to the number of chips.
 * Sweeps 1/2/4/8 chips on a large scene and reports per-chip balance,
 * frame time, and communication — the scaling argument that motivates
 * multi-chip over larger dies (Sec. II-D), including the yield/cost
 * model of [9] the paper cites.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "multichip/system.h"
#include "nerf/moe.h"

using namespace fusion3d;

namespace
{

/**
 * Negative-binomial die-yield model (the paper's citation [9]):
 * yield = (1 + A*D0/alpha)^-alpha with defect density D0 per cm^2.
 */
double
dieYield(double area_mm2, double d0_per_cm2 = 0.05, double alpha = 3.0)
{
    const double a_cm2 = area_mm2 / 100.0;
    return std::pow(1.0 + a_cm2 * d0_per_cm2 / alpha, -alpha);
}

} // namespace

int
main(int argc, char **argv)
{
    const int trace_rays = argc > 1 ? std::atoi(argv[1]) : 500;
    bench::banner("Scaling study: chips vs one big die (Sec. II-D / V-A)");

    const auto scene = scenes::makeNerf360Scene("garden");

    std::printf("%6s %12s %10s %10s %12s %12s %10s\n", "chips", "frame ms", "FPS",
                "balance", "comm MB", "saving %", "power W");
    bench::rule(80);
    for (int chips : {1, 2, 4, 8}) {
        nerf::MoeConfig mc;
        mc.numExperts = chips;
        mc.expert = bench::defaultPipeline();
        mc.expert.model.grid.log2TableSize = 14;
        mc.expert.sampler.maxSamplesPerRay = 48;
        nerf::MoeNerf moe(mc);
        bench::bootstrapMoeGates(moe, *scene);

        multichip::SystemConfig sc;
        sc.numChips = chips;
        const multichip::MultiChipSystem sys(sc);
        const nerf::Camera cam = nerf::Camera::orbit({0.5f, 0.4f, 0.5f}, 0.38f, 50.0f,
                                                     14.0f, 70.0f, 800, 800);
        const auto r = sys.evaluateInference(moe, cam, trace_rays);
        std::printf("%6d %12.2f %10.1f %10.3f %12.2f %12.1f %10.1f\n", chips,
                    r.seconds * 1e3, 1.0 / r.seconds, r.imbalance,
                    r.moeCommBytes / 1e6, r.commSavingFraction() * 100.0,
                    sys.totalPowerW());
        std::fflush(stdout);
    }
    bench::rule(80);

    std::printf("\nFabrication economics (yield model of [9], D0 = 0.1/cm^2):\n");
    const double small = chip::ChipConfig::scaledUp().dieAreaMm2;
    for (int chips : {1, 2, 4, 8}) {
        const double big_area = small * chips;
        const double y_small = dieYield(small);
        const double y_big = dieYield(big_area);
        // Cost per GOOD unit of compute: area / yield, normalized.
        const double cost_multi = chips * small / y_small;
        const double cost_mono = big_area / y_big;
        std::printf("  %d-chip system (%4.1f mm^2 each): yield %4.1f%% vs monolithic "
                    "%5.1f mm^2 die: yield %4.1f%% -> monolithic costs %.2fx more "
                    "per good system\n",
                    chips, small, y_small * 100.0, big_area, y_big * 100.0,
                    cost_mono / cost_multi);
    }
    std::printf("\nThe paper's example: scaling RT-NeRF from edge (18.85 mm^2, yield "
                "%.0f%%) to server (565 mm^2, yield %.0f%%).\n",
                dieYield(18.85) * 100.0, dieYield(565.0) * 100.0);
    std::printf("Paper: yield drops from 99%% to 72%% when scaling RT-NeRF's die, "
                "doubling cost per unit area; the multi-chip route avoids this.\n");
    return 0;
}
