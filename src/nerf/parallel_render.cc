#include "nerf/parallel_render.h"

#include <vector>

#include "common/logging.h"
#include "nerf/sample_batch.h"
#include "obs/trace.h"

namespace fusion3d::nerf
{

namespace
{

/** Stream id of the per-row jitter generators. */
constexpr std::uint64_t kRowStream = 0x9e3779b97f4a7c15ULL;

/**
 * Render the pixel rectangle [x0, x1) x [y0, y1) into @p color (and
 * @p depth when non-null). The whole rect is one ray batch: Stage I
 * samples every pixel's ray into a flat SampleBatch (jitter stays
 * per-row, so tiling cannot change the streams), one
 * ServeableField::evalBatch evaluates the flattened samples through the
 * backend's batched kernels, and each ray composites over its CSR
 * range. Per sample the batched arithmetic matches the scalar path bit
 * for bit, so the output is still bit-identical across tilings and
 * thread counts, and to the scalar reference. (A rect with x0 > 0
 * starts its per-row jitter stream at a different offset than a
 * full-width render — only jitterless renders are sub-rect-invariant,
 * which is the inference default.)
 */
void
renderRect(const ServeableField &field, const OccupancyGrid *grid,
           const Camera &camera, const TiledRenderConfig &cfg, int x0, int x1,
           int y0, int y1, Image &color, float *depth)
{
    F3D_TRACE_SPAN_ARG("parallel_render", "row_tile", y0);
    const RaySampler sampler(cfg.sampler);
    std::vector<RaySample> samples;
    SampleBatch batch;

    for (int y = y0; y < y1; ++y) {
        Pcg32 rng(cfg.seed + static_cast<std::uint64_t>(y), kRowStream);
        for (int x = x0; x < x1; ++x) {
            const Ray ray = camera.rayForPixel(x, y);
            sampler.sample(ray, grid, rng, samples);
            batch.appendRay(normalize(ray.dir), samples);
        }
    }

    batch.prepareOutputs();
    field.evalBatch(batch.positions, batch.dirs, batch.sigmas, batch.rgbs);

    int r = 0;
    for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x, ++r) {
            const std::size_t begin = batch.rayBegin(r);
            const std::size_t count = batch.raySampleCount(r);
            const std::span<const float> sigmas{batch.sigmas.data() + begin, count};
            const std::span<const Vec3f> rgbs{batch.rgbs.data() + begin, count};
            const std::span<const float> dts{batch.dts.data() + begin, count};

            const CompositeResult cr = composite(sigmas, rgbs, dts, cfg.render);
            color.at(x, y) = clamp(cr.color, 0.0f, 1.0f);

            if (depth) {
                const std::span<const float> ts{batch.ts.data() + begin, count};
                depth[static_cast<std::size_t>(y) * camera.width() + x] =
                    compositeDepth(sigmas, dts, ts, cfg.render, cfg.farDepth);
            }
        }
    }
}

void
renderTiled(const ServeableField &field, const OccupancyGrid *grid,
            const Camera &camera, const TiledRenderConfig &cfg, ThreadPool *pool,
            Image &color, float *depth)
{
    const auto body = [&](int y0, int y1) {
        renderRect(field, grid, camera, cfg, 0, camera.width(), y0, y1, color,
                   depth);
    };
    if (pool) {
        pool->parallelFor(0, camera.height(), body, cfg.rowsPerTile);
    } else {
        body(0, camera.height());
    }
}

} // namespace

Image
renderImageTiled(const ServeableField &field, const OccupancyGrid *grid,
                 const Camera &camera, const TiledRenderConfig &cfg,
                 ThreadPool *pool)
{
    Image out(camera.width(), camera.height());
    renderTiled(field, grid, camera, cfg, pool, out, nullptr);
    return out;
}

DepthFrame
renderDepthFrameTiled(const ServeableField &field, const OccupancyGrid *grid,
                      const Camera &camera, const TiledRenderConfig &cfg,
                      ThreadPool *pool)
{
    DepthFrame frame;
    frame.camera = camera;
    frame.color = Image(camera.width(), camera.height());
    frame.depth.assign(
        static_cast<std::size_t>(camera.width()) * camera.height(), 0.0f);
    renderTiled(field, grid, camera, cfg, pool, frame.color, frame.depth.data());
    return frame;
}

Image
renderImageTiled(const NerfModel &model, const OccupancyGrid *grid,
                 const Camera &camera, const TiledRenderConfig &cfg,
                 ThreadPool *pool)
{
    const HashGridServeField field(model);
    return renderImageTiled(field, grid, camera, cfg, pool);
}

DepthFrame
renderDepthFrameTiled(const NerfModel &model, const OccupancyGrid *grid,
                      const Camera &camera, const TiledRenderConfig &cfg,
                      ThreadPool *pool)
{
    const HashGridServeField field(model);
    return renderDepthFrameTiled(field, grid, camera, cfg, pool);
}

std::uint64_t
renderTilesInto(const ServeableField &field, const OccupancyGrid *grid,
                const Camera &camera, const TiledRenderConfig &cfg,
                std::span<const TileRect> tiles, ThreadPool *pool, Image &color,
                float *depth)
{
    std::uint64_t pixels = 0;
    for (const TileRect &t : tiles) {
        if (t.x0 < 0 || t.y0 < 0 || t.x1 > camera.width() ||
            t.y1 > camera.height() || t.x0 >= t.x1 || t.y0 >= t.y1)
            fatal("renderTilesInto: tile [%d,%d)x[%d,%d) outside %dx%d image",
                  t.x0, t.x1, t.y0, t.y1, camera.width(), camera.height());
        pixels += t.pixels();
    }

    const auto body = [&](int i0, int i1) {
        for (int i = i0; i < i1; ++i) {
            const TileRect &t = tiles[static_cast<std::size_t>(i)];
            renderRect(field, grid, camera, cfg, t.x0, t.x1, t.y0, t.y1, color,
                       depth);
        }
    };
    if (pool) {
        pool->parallelFor(0, static_cast<int>(tiles.size()), body, /*grain=*/1);
    } else {
        body(0, static_cast<int>(tiles.size()));
    }
    return pixels;
}

std::uint64_t
renderTilesInto(const NerfModel &model, const OccupancyGrid *grid,
                const Camera &camera, const TiledRenderConfig &cfg,
                std::span<const TileRect> tiles, ThreadPool *pool, Image &color,
                float *depth)
{
    const HashGridServeField field(model);
    return renderTilesInto(field, grid, camera, cfg, tiles, pool, color, depth);
}

} // namespace fusion3d::nerf
