#include "nerf/parallel_render.h"

#include <vector>

#include "obs/trace.h"

namespace fusion3d::nerf
{

namespace
{

/** Stream id of the per-row jitter generators. */
constexpr std::uint64_t kRowStream = 0x9e3779b97f4a7c15ULL;

/**
 * Render rows [y0, y1) into @p color (and @p depth when non-null).
 * Replicates NerfPipeline::traceRay's evaluation order exactly —
 * sample, forward each point, composite, clamp — so the output matches
 * the single-threaded path bit for bit.
 */
void
renderRows(const NerfModel &model, const OccupancyGrid *grid, const Camera &camera,
           const TiledRenderConfig &cfg, int y0, int y1, Image &color, float *depth)
{
    F3D_TRACE_SPAN_ARG("parallel_render", "row_tile", y0);
    const RaySampler sampler(cfg.sampler);
    PointWorkspace ws = model.makeWorkspace();
    std::vector<RaySample> samples;
    std::vector<Vec3f> rgbs;
    std::vector<float> sigmas, dts, ts;

    for (int y = y0; y < y1; ++y) {
        Pcg32 rng(cfg.seed + static_cast<std::uint64_t>(y), kRowStream);
        for (int x = 0; x < camera.width(); ++x) {
            const Ray ray = camera.rayForPixel(x, y);
            sampler.sample(ray, grid, rng, samples);

            sigmas.resize(samples.size());
            rgbs.resize(samples.size());
            dts.resize(samples.size());
            const Vec3f dir = normalize(ray.dir);
            for (std::size_t i = 0; i < samples.size(); ++i) {
                const PointEval pe = model.forwardPoint(samples[i].pos, dir, ws);
                sigmas[i] = pe.sigma;
                rgbs[i] = pe.rgb;
                dts[i] = samples[i].dt;
            }

            const CompositeResult cr = composite(sigmas, rgbs, dts, cfg.render);
            color.at(x, y) = clamp(cr.color, 0.0f, 1.0f);

            if (depth) {
                ts.resize(samples.size());
                for (std::size_t i = 0; i < samples.size(); ++i)
                    ts[i] = samples[i].t;
                depth[static_cast<std::size_t>(y) * camera.width() + x] =
                    compositeDepth(sigmas, dts, ts, cfg.render, cfg.farDepth);
            }
        }
    }
}

void
renderTiled(const NerfModel &model, const OccupancyGrid *grid, const Camera &camera,
            const TiledRenderConfig &cfg, ThreadPool *pool, Image &color,
            float *depth)
{
    const auto body = [&](int y0, int y1) {
        renderRows(model, grid, camera, cfg, y0, y1, color, depth);
    };
    if (pool) {
        pool->parallelFor(0, camera.height(), body, cfg.rowsPerTile);
    } else {
        body(0, camera.height());
    }
}

} // namespace

Image
renderImageTiled(const NerfModel &model, const OccupancyGrid *grid,
                 const Camera &camera, const TiledRenderConfig &cfg,
                 ThreadPool *pool)
{
    Image out(camera.width(), camera.height());
    renderTiled(model, grid, camera, cfg, pool, out, nullptr);
    return out;
}

DepthFrame
renderDepthFrameTiled(const NerfModel &model, const OccupancyGrid *grid,
                      const Camera &camera, const TiledRenderConfig &cfg,
                      ThreadPool *pool)
{
    DepthFrame frame;
    frame.camera = camera;
    frame.color = Image(camera.width(), camera.height());
    frame.depth.assign(
        static_cast<std::size_t>(camera.width()) * camera.height(), 0.0f);
    renderTiled(model, grid, camera, cfg, pool, frame.color, frame.depth.data());
    return frame;
}

} // namespace fusion3d::nerf
