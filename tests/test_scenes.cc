/** @file Tests of the procedural scenes and the reference renderer. */

#include <gtest/gtest.h>

#include "scenes/dataset_gen.h"
#include "scenes/factory.h"
#include "scenes/reference_renderer.h"

namespace fusion3d::scenes
{
namespace
{

TEST(Primitives, SphereSignedDistance)
{
    Primitive s;
    s.type = Primitive::Type::Sphere;
    s.a = {0.5f, 0.5f, 0.5f};
    s.b = {0.2f, 0.0f, 0.0f};
    EXPECT_NEAR(s.signedDistance({0.5f, 0.5f, 0.5f}), -0.2f, 1e-6f);
    EXPECT_NEAR(s.signedDistance({0.7f, 0.5f, 0.5f}), 0.0f, 1e-6f);
    EXPECT_NEAR(s.signedDistance({0.9f, 0.5f, 0.5f}), 0.2f, 1e-6f);
}

TEST(Primitives, BoxSignedDistance)
{
    Primitive b;
    b.type = Primitive::Type::Box;
    b.a = {0.0f, 0.0f, 0.0f};
    b.b = {1.0f, 1.0f, 1.0f};
    EXPECT_LT(b.signedDistance({0.5f, 0.5f, 0.5f}), 0.0f);
    EXPECT_NEAR(b.signedDistance({1.5f, 0.5f, 0.5f}), 0.5f, 1e-5f);
}

TEST(Primitives, DensityFalloff)
{
    Primitive s;
    s.type = Primitive::Type::Sphere;
    s.a = {0.5f, 0.5f, 0.5f};
    s.b = {0.2f, 0.0f, 0.0f};
    s.density = 100.0f;
    s.softness = 0.01f;
    EXPECT_NEAR(s.densityAt({0.5f, 0.5f, 0.5f}), 100.0f, 1e-3f);
    EXPECT_NEAR(s.densityAt({0.9f, 0.9f, 0.9f}), 0.0f, 1e-3f);
    // At the surface: half density.
    EXPECT_NEAR(s.densityAt({0.7f, 0.5f, 0.5f}), 50.0f, 1.0f);
}

TEST(Scenes, AllSyntheticNamesBuild)
{
    for (const std::string &name : syntheticSceneNames()) {
        const auto scene = makeSyntheticScene(name);
        EXPECT_EQ(scene->name(), name);
        EXPECT_FALSE(scene->primitives().empty());
        const double fill = scene->occupiedFraction(16);
        EXPECT_GT(fill, 0.0) << name;
        EXPECT_LT(fill, 0.6) << name;
    }
}

TEST(Scenes, All360NamesBuild)
{
    for (const std::string &name : nerf360SceneNames()) {
        const auto scene = makeNerf360Scene(name);
        EXPECT_EQ(scene->name(), name);
        EXPECT_GT(scene->occupiedFraction(16), 0.0) << name;
    }
}

TEST(Scenes, FillFactorOrderingMatchesTableVI)
{
    // Table VI's sampling speedups are inversely tied to occupancy
    // fill: mic (20.2x, sparsest) ... ship (5.4x, densest).
    const double mic = makeSyntheticScene("mic")->occupiedFraction();
    const double ficus = makeSyntheticScene("ficus")->occupiedFraction();
    const double ship = makeSyntheticScene("ship")->occupiedFraction();
    EXPECT_LT(mic, ficus);
    EXPECT_LT(ficus, ship);
    EXPECT_LT(mic, 0.03);
    EXPECT_GT(ship, 0.10);
}

TEST(Scenes, AlbedoIsBlendedColor)
{
    const auto scene = makeSyntheticScene("chair");
    const Vec3f a = scene->albedo({0.5f, 0.46f, 0.5f}); // seat cushion
    EXPECT_GE(minComp(a), 0.0f);
    EXPECT_LE(maxComp(a), 1.0f);
}

TEST(ReferenceRenderer, BackgroundWhereNoGeometry)
{
    const auto scene = makeSyntheticScene("mic");
    ReferenceConfig rc;
    rc.render.background = {0.1f, 0.2f, 0.3f};
    // A ray that misses the cube entirely.
    const Ray miss({5.0f, 5.0f, 5.0f}, {0.0f, 1.0f, 0.0f});
    EXPECT_EQ(referenceTrace(*scene, miss, rc), rc.render.background);
}

TEST(ReferenceRenderer, ObjectOccludesBackground)
{
    const auto scene = makeSyntheticScene("lego");
    ReferenceConfig rc;
    rc.render.background = {1.0f, 1.0f, 1.0f};
    // Straight through the model center.
    const Ray hit({0.5f, 0.45f, -1.0f}, {0.0f, 0.0f, 1.0f});
    const Vec3f c = referenceTrace(*scene, hit, rc);
    EXPECT_LT(c.x + c.y + c.z, 2.9f); // not the pure-white background
}

TEST(ReferenceRenderer, ImageHasContrast)
{
    const auto scene = makeSyntheticScene("chair");
    const nerf::Camera cam = nerf::Camera::orbit({0.5f, 0.45f, 0.5f}, 1.4f, 30.0f,
                                                 20.0f, 45.0f, 32, 32);
    ReferenceConfig rc;
    const Image img = referenceRender(*scene, cam, rc);
    float lo = 1e9f, hi = -1e9f;
    for (const Vec3f &p : img.pixels()) {
        lo = std::min(lo, p.x + p.y + p.z);
        hi = std::max(hi, p.x + p.y + p.z);
    }
    EXPECT_GT(hi - lo, 0.2f);
}

TEST(DatasetGen, SplitsAndShapes)
{
    const auto scene = makeSyntheticScene("mic");
    DatasetConfig dc = syntheticRig(16);
    dc.trainViews = 5;
    dc.testViews = 2;
    dc.reference.steps = 64;
    const nerf::Dataset ds = makeDataset(*scene, dc);
    EXPECT_EQ(ds.sceneName, "mic");
    EXPECT_EQ(ds.train.size() + ds.test.size(), 7u);
    EXPECT_EQ(static_cast<int>(ds.test.size()), 2);
    for (const auto &v : ds.train) {
        EXPECT_EQ(v.image.width(), 16);
        EXPECT_EQ(v.image.height(), 16);
    }
    EXPECT_EQ(ds.trainPixelCount(), ds.train.size() * 16 * 16);
}

TEST(DatasetGen, Nerf360RigIsInsideScene)
{
    const DatasetConfig dc = nerf360Rig(16);
    EXPECT_LT(dc.orbitRadius, 0.5f);
    EXPECT_GT(dc.vfovDegrees, 60.0f);
}

} // namespace
} // namespace fusion3d::scenes
