/**
 * @file
 * Occupancy grid over the normalized unit cube. Stage I filters sampled
 * points through this grid so only points in non-empty space reach
 * Stages II/III; the paper additionally uses it as the built-in MoE
 * gating function of the multi-chip design (Sec. II-A, Sec. V-A).
 */

#ifndef FUSION3D_NERF_OCCUPANCY_GRID_H_
#define FUSION3D_NERF_OCCUPANCY_GRID_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/ray.h"
#include "common/rng.h"
#include "common/vec.h"

namespace fusion3d::nerf
{

/** A cubic occupancy grid with EMA density estimates and a bitfield. */
class OccupancyGrid
{
  public:
    /**
     * @param resolution Cells per axis.
     * @param threshold  Density above which a cell counts as occupied.
     */
    explicit OccupancyGrid(int resolution = 64, float threshold = 0.01f);

    int resolution() const { return res_; }
    float threshold() const { return threshold_; }
    std::size_t cellCount() const { return density_.size(); }

    /** Linear index of the cell containing @p pos (pos in [0,1]^3). */
    std::size_t cellIndex(const Vec3f &pos) const;

    /** Cell-center position of linear cell @p idx. */
    Vec3f cellCenter(std::size_t idx) const;

    bool occupiedCell(std::size_t idx) const { return occupied_[idx]; }
    bool occupiedAt(const Vec3f &pos) const { return occupied_[cellIndex(pos)]; }

    /**
     * EMA update from a density oracle (the NeRF model during training,
     * or an analytic scene). Each cell is probed at its jittered center;
     * the stored estimate decays toward the fresh sample as in
     * Instant-NGP's grid update.
     *
     * @param density Density oracle over normalized coordinates.
     * @param rng     Jitter source.
     * @param decay   EMA decay of the old estimate.
     */
    void update(const std::function<float(const Vec3f &)> &density, Pcg32 &rng,
                float decay = 0.95f);

    /**
     * Phase one of a split update: the jittered probe position of every
     * cell, in cell order. Consumes exactly the rng draws update() would
     * (three per cell), so collect + applyDensities with a bit-exact
     * density oracle reproduces update() exactly — this is what lets
     * the trainer evaluate the probes as one parallel batch without
     * perturbing the jitter stream.
     *
     * @param rng Jitter source (same stream position as update()).
     * @param out Resized to cellCount(), clamped into [0,1]^3.
     */
    void collectProbePositions(Pcg32 &rng, std::vector<Vec3f> &out) const;

    /**
     * Phase two of a split update: fold per-cell fresh density samples
     * (cell order, cellCount() values) into the EMA and refresh the
     * occupancy bits.
     */
    void applyDensities(std::span<const float> fresh, float decay = 0.95f);

    /** Mark every cell occupied (the state before any update). */
    void markAll();

    /** Clear every cell. */
    void clearAll();

    /**
     * Keep only cells for which @p keep is true (MoE Level-1 tiling:
     * restrict an expert's gate to its spatial region).
     */
    void maskRegion(const std::function<bool(const Vec3f &)> &keep);

    /** Fraction of cells currently occupied. */
    double occupiedFraction() const;

    /** Occupancy bitfield size in bytes (1 bit per cell). */
    std::size_t bitfieldBytes() const { return (cellCount() + 7) / 8; }

    /** One contiguous occupied interval along a traversed ray. */
    struct Interval
    {
        float t0 = 0.0f;
        float t1 = 0.0f;
    };

    /**
     * 3D-DDA traversal: walk the grid cells pierced by @p ray between
     * @p t_min and @p t_max and return the merged parametric intervals
     * that lie in occupied cells. This is how the sampling hardware
     * skips empty space in whole-cell steps instead of probing the
     * bitfield per sample.
     *
     * @param out   Receives the merged occupied intervals (cleared first).
     * @param steps If non-null, receives the number of grid cells the
     *              DDA visited (the hardware's skip cost).
     * @return Number of intervals produced.
     */
    int traverse(const Ray &ray, float t_min, float t_max,
                 std::vector<Interval> &out, int *steps = nullptr) const;

  private:
    int res_;
    float threshold_;
    std::vector<float> density_;
    std::vector<bool> occupied_;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_OCCUPANCY_GRID_H_
