/**
 * @file
 * Analytic density/color fields standing in for the photographed scenes
 * of NeRF-Synthetic and NeRF-360 (which we cannot ship). Each scene is a
 * composition of soft-boundary primitives; the reference renderer turns
 * them into ground-truth posed images, and their occupancy geometry
 * drives every accelerator-relevant workload statistic (see DESIGN.md
 * substitution table).
 */

#ifndef FUSION3D_SCENES_SCENE_H_
#define FUSION3D_SCENES_SCENE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/aabb.h"
#include "common/vec.h"

namespace fusion3d::scenes
{

/** A soft-boundary volumetric primitive. */
struct Primitive
{
    enum class Type { Sphere, Box, Torus, CylinderY };

    Type type = Type::Sphere;
    /** Center (Sphere/Torus/CylinderY) or box lower corner. */
    Vec3f a;
    /** Radius vector (Sphere: x=r; Torus: x=major,y=minor;
     *  CylinderY: x=radius, y=half-height) or box upper corner. */
    Vec3f b;
    /** Peak volumetric density inside the primitive. */
    float density = 300.0f;
    /** Albedo color. */
    Vec3f color{0.8f, 0.8f, 0.8f};
    /** Boundary softness (distance units of the falloff). */
    float softness = 0.01f;

    /** Signed distance to the primitive surface (negative inside). */
    float signedDistance(const Vec3f &p) const;

    /** Density contribution at @p p (smooth step across the surface). */
    float densityAt(const Vec3f &p) const;
};

/** An analytic scene over the normalized unit cube. */
class Scene
{
  public:
    Scene(std::string name, std::vector<Primitive> prims);
    virtual ~Scene() = default;

    const std::string &name() const { return name_; }
    const std::vector<Primitive> &primitives() const { return prims_; }

    /** Volumetric density at @p p (normalized coordinates). */
    virtual float density(const Vec3f &p) const;

    /** Albedo at @p p, contribution-weighted over primitives. */
    virtual Vec3f albedo(const Vec3f &p) const;

    /**
     * Fraction of the unit cube with density above @p threshold, probed
     * on a res^3 lattice. This is the scene's occupancy "fill factor",
     * the statistic the sampling-ablation speedups track.
     */
    double occupiedFraction(int res = 32, float threshold = 0.01f) const;

  private:
    std::string name_;
    std::vector<Primitive> prims_;
};

} // namespace fusion3d::scenes

#endif // FUSION3D_SCENES_SCENE_H_
