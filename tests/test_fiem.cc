/** @file Bit-exactness tests of the FIEM multiplier and the
 *  reconfigurable interpolation array, plus the gate-cost ablation. */

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "chip/fiem.h"
#include "chip/hw_cost.h"
#include "chip/interp_array.h"
#include "common/rng.h"

namespace fusion3d::chip
{
namespace
{

/** FIEM must equal the IEEE float reference exactly: an 11-bit
 *  significand times an 8-bit integer is exact in single precision. */
TEST(Fiem, ExactAgainstFloatReferenceExhaustiveWeights)
{
    Pcg32 rng(1);
    for (int trial = 0; trial < 400; ++trial) {
        const std::uint16_t bits = static_cast<std::uint16_t>(rng.nextUint() & 0x7fff);
        const Half h = Half::fromBits(bits);
        if (h.isNan() || h.isInf())
            continue;
        for (int w = -255; w <= 255; ++w) {
            const float expect = h.toFloat() * static_cast<float>(w);
            const float got = fiemMultiply(h, w);
            EXPECT_EQ(got, expect)
                << "half bits 0x" << std::hex << bits << " weight " << std::dec << w;
        }
    }
}

TEST(Fiem, SubnormalInputsExact)
{
    for (std::uint16_t bits = 1; bits < 0x0400; bits += 7) {
        const Half h = Half::fromBits(bits); // positive subnormals
        for (int w : {0, 1, 3, 127, 255, -255}) {
            EXPECT_EQ(fiemMultiply(h, w), h.toFloat() * static_cast<float>(w));
        }
    }
}

TEST(Fiem, SpecialValues)
{
    const Half inf = Half::fromBits(0x7c00);
    const Half nan = Half::fromBits(0x7e00);
    const Half zero = Half::fromFloat(0.0f);

    EXPECT_TRUE(std::isinf(fiemMultiply(inf, 2)));
    EXPECT_TRUE(std::isinf(fiemMultiply(inf, -2)));
    EXPECT_LT(fiemMultiply(inf, -2), 0.0f);
    EXPECT_TRUE(std::isnan(fiemMultiply(inf, 0)));
    EXPECT_TRUE(std::isnan(fiemMultiply(nan, 5)));
    EXPECT_EQ(fiemMultiply(zero, 100), 0.0f);
    EXPECT_EQ(fiemMultiply(Half::fromFloat(3.0f), 0), 0.0f);
}

TEST(Fiem, SignHandling)
{
    const Half h = Half::fromFloat(-1.5f);
    EXPECT_FLOAT_EQ(fiemMultiply(h, 2), -3.0f);
    EXPECT_FLOAT_EQ(fiemMultiply(h, -2), 3.0f);
    EXPECT_FLOAT_EQ(fiemMultiply(Half::fromFloat(1.5f), -2), -3.0f);
}

TEST(Fiem, HalfOutputRoundsToNearestEven)
{
    Pcg32 rng(2);
    for (int trial = 0; trial < 3000; ++trial) {
        const Half h =
            Half::fromBits(static_cast<std::uint16_t>(rng.nextUint() & 0x7fff));
        if (h.isNan() || h.isInf())
            continue;
        const int w = static_cast<int>(rng.nextBounded(511)) - 255;
        const Half got = fiemMultiplyHalf(h, w);
        const Half expect = Half::fromFloat(h.toFloat() * static_cast<float>(w));
        EXPECT_EQ(got.bits(), expect.bits());
    }
}

TEST(InterpArray, WeightQuantization)
{
    const QuantizedWeights q =
        quantizeWeights({0.0f, 1.0f, 0.5f, 0.25f, 2.0f, -1.0f, 0.1f, 0.9f});
    EXPECT_EQ(q.w[0], 0);
    EXPECT_EQ(q.w[1], 255);
    EXPECT_EQ(q.w[2], 128); // round(127.5) away from zero = 128
    EXPECT_EQ(q.w[4], 255); // clamped
    EXPECT_EQ(q.w[5], 0);   // clamped
}

TEST(InterpArray, ForwardMatchesFloatReference)
{
    Pcg32 rng(3);
    for (int trial = 0; trial < 300; ++trial) {
        std::array<Half, 8> feats;
        std::array<float, 8> weights;
        float wsum = 0.0f;
        for (int i = 0; i < 8; ++i) {
            feats[static_cast<std::size_t>(i)] =
                Half::fromFloat(rng.nextRange(-2.0f, 2.0f));
            weights[static_cast<std::size_t>(i)] = rng.nextFloat();
            wsum += weights[static_cast<std::size_t>(i)];
        }
        // Normalize like trilinear weights.
        for (float &w : weights)
            w /= wsum;
        const QuantizedWeights q = quantizeWeights(weights);

        float reference = 0.0f;
        for (int i = 0; i < 8; ++i) {
            reference += feats[static_cast<std::size_t>(i)].toFloat() *
                         (static_cast<float>(q.w[static_cast<std::size_t>(i)]) *
                          QuantizedWeights::kScale);
        }
        const float got = InterpArray::forwardMacTree(feats, q);
        EXPECT_NEAR(got, reference, 1e-5f);
    }
}

TEST(InterpArray, BackwardIsTransposeOfForward)
{
    // <backward(d), f> == d * forward(f): the two modes implement the
    // same bilinear form with inverted edges (Fig. 6(a)).
    Pcg32 rng(4);
    for (int trial = 0; trial < 200; ++trial) {
        std::array<Half, 8> feats;
        std::array<float, 8> weights;
        for (int i = 0; i < 8; ++i) {
            feats[static_cast<std::size_t>(i)] =
                Half::fromFloat(rng.nextRange(-1.0f, 1.0f));
            weights[static_cast<std::size_t>(i)] = rng.nextFloat();
        }
        const QuantizedWeights q = quantizeWeights(weights);
        const Half dout = Half::fromFloat(rng.nextRange(-1.0f, 1.0f));

        const std::array<float, 8> grads = InterpArray::backwardScatter(dout, q);
        float lhs = 0.0f;
        for (int i = 0; i < 8; ++i)
            lhs += grads[static_cast<std::size_t>(i)] *
                   feats[static_cast<std::size_t>(i)].toFloat();
        const float rhs = dout.toFloat() * InterpArray::forwardMacTree(feats, q);
        EXPECT_NEAR(lhs, rhs, 1e-4f);
    }
}

TEST(HwCost, FiemSavesAreaAndPower)
{
    const HwCost trad = fiem_cost::int2fpPlusFpmul(8);
    const HwCost fiem = fiem_cost::fiem(8);
    const double area_saving = 1.0 - fiem.areaUnits / trad.areaUnits;
    const double power_saving = 1.0 - fiem.energyUnits / trad.energyUnits;
    // Paper (Fig. 6(d)): 55% area, 65% power. The unit-gate model must
    // land in the same regime.
    EXPECT_GT(area_saving, 0.45);
    EXPECT_LT(area_saving, 0.75);
    EXPECT_GT(power_saving, 0.45);
    EXPECT_LT(power_saving, 0.80);
}

TEST(HwCost, FiemSavingGrowsWithNarrowerInt)
{
    const double s8 = 1.0 - fiem_cost::fiem(8).areaUnits /
                                fiem_cost::int2fpPlusFpmul(8).areaUnits;
    const double s4 = 1.0 - fiem_cost::fiem(4).areaUnits /
                                fiem_cost::int2fpPlusFpmul(4).areaUnits;
    EXPECT_GT(s4, s8);
}

TEST(HwCost, StageTwoSharingMatchesPaperSplit)
{
    const StageTwoSharing s = stageTwoSharing();
    // Paper: 87.4% directly shared, 12.6% reused via reconfiguration.
    EXPECT_GT(s.sharedFraction(), 0.80);
    EXPECT_LT(s.sharedFraction(), 0.95);
    EXPECT_NEAR(s.sharedFraction() + s.reconfiguredFraction(), 1.0, 1e-9);
    // Reconfiguration avoids duplicating the array once per mode.
    EXPECT_GT(s.duplicatedSavingUnits, 0.0);
}

TEST(HwCost, BasicBlocksScale)
{
    EXPECT_GT(hw::multiplier(24, 24).areaUnits, hw::multiplier(11, 11).areaUnits);
    EXPECT_GT(hw::adder(32).areaUnits, hw::adder(8).areaUnits);
    EXPECT_GT(hw::barrelShifter(32).areaUnits, hw::barrelShifter(8).areaUnits);
}

} // namespace
} // namespace fusion3d::chip
