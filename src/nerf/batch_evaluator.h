/**
 * @file
 * The shared Stage I/III machinery of every batch-native pipeline,
 * hoisted out of NerfPipeline so PointPipeline (FreqNeRF, TensoRF)
 * instantiates the identical code: CSR SampleBatch build through the
 * occupancy gate (rng consumed per ray, so jitter streams are
 * batch-size invariant), batched compositing over per-ray CSR ranges
 * (pool-parallel with a fixed grain), and the recompute-in-backward
 * composite tape. The model evaluation itself is injected as a functor
 * — the one genuinely backend-specific stage — so each pipeline keeps
 * its own forward/backward sharding policy.
 */

#ifndef FUSION3D_NERF_BATCH_EVALUATOR_H_
#define FUSION3D_NERF_BATCH_EVALUATOR_H_

#include <span>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "nerf/occupancy_grid.h"
#include "nerf/radiance_field.h"
#include "nerf/renderer.h"
#include "nerf/sample_batch.h"
#include "nerf/sampler.h"

namespace fusion3d::nerf
{

/** Rays per compositing chunk in the pool-parallel loops. */
inline constexpr int kRayCompositeGrain = 64;

/** Feed the nerf.batch.compaction.* metrics (batch_evaluator.cc). */
void noteCompactionMetrics(std::size_t batch_samples, std::size_t mlp_samples);

/**
 * Owns the batch tape and scratch of one pipeline's traceRays /
 * backwardRays pair. The owner name parameterizes the panic messages so
 * diagnostics keep naming the concrete pipeline.
 */
class RayBatchEvaluator
{
  public:
    explicit RayBatchEvaluator(const char *owner) : owner_(owner) {}

    bool tapeValid() const { return tape_valid_; }
    void invalidateTape() { tape_valid_ = false; }
    const SampleBatch &tapeBatch() const { return tape_batch_; }

    /** Sample accounting of the last traceRays on this evaluator. */
    struct CompactionStats
    {
        /** Samples in the composited batch (all candidates). */
        std::size_t batchSamples = 0;
        /** Samples the model actually evaluated. */
        std::size_t mlpSamples = 0;
    };

    /**
     * Enable occupancy-driven sample compaction: Stage I keeps every
     * lattice candidate (the sampler runs ungated, consuming the same
     * one-jitter-per-ray rng stream), the gate is probed once per
     * sample at batch build, and only occupied samples reach the model;
     * their outputs scatter back into the full batch, whose empty slots
     * keep sigma 0 — an exact compositing no-op, so composited colors
     * (and, through the tape, parameter gradients) are bit-identical
     * to the gated path. RayEval::samples counts MLP-visible samples
     * and firstHitT is the first occupied sample's t, exactly as in
     * the gated path; RayEval::composited may differ (empty candidates
     * participate in early termination counting). No-op while the
     * caller passes a null grid.
     */
    void setCompaction(bool on) { compaction_ = on; }
    bool compaction() const { return compaction_; }
    const CompactionStats &lastCompaction() const { return last_compaction_; }

    /**
     * Batch-native traceRays: Stage I samples every ray, in order, into
     * one flat SoA batch, @p forward fills batch.sigmas/batch.rgbs
     * (after prepareOutputs), then each ray composites over its CSR
     * range — pool-parallel, bit-exact with the serial loop because
     * rays touch disjoint ranges. record=true keeps the batch as the
     * tape for backwardRays().
     *
     * @param forward void(SampleBatch &batch): the backend's batched
     *                model evaluation over the flattened samples.
     */
    template <class ForwardFn>
    void
    traceRays(const RaySampler &sampler, const OccupancyGrid *grid,
              const RenderParams &render, std::span<const Ray> rays, Pcg32 &rng,
              bool record, std::span<RayEval> out, RayWorkload *workload,
              ThreadPool *pool, ForwardFn &&forward)
    {
        if (out.size() < rays.size())
            panic("%s::traceRays: output span too small (%zu < %zu)", owner_,
                  out.size(), rays.size());
        if (workload) {
            workload->pairs.clear();
            workload->totalCandidates = 0;
            workload->totalValid = 0;
            workload->ddaSteps = 0;
            workload->intersectionOps.reset();
        }

        const bool compact = compaction_ && grid != nullptr;
        SampleBatch &batch = record ? tape_batch_ : scratch_batch_;
        batch.clear();

        // Stage I: sample every ray, in order, into one flat SoA batch.
        // The rng is consumed per ray exactly as the scalar loop did,
        // so jitter streams are batch-size invariant. Under compaction
        // the sampler runs ungated (one jitter draw per ray either
        // way, so the stream is identical) and the gate moves to the
        // batch-build probe below.
        for (std::size_t r = 0; r < rays.size(); ++r) {
            sampler.sample(rays[r], compact ? nullptr : grid, rng,
                           scratch_samples_,
                           workload ? &scratch_workload_ : nullptr);
            batch.appendRay(normalize(rays[r].dir), scratch_samples_);
            out[r] = RayEval{};
            out[r].samples = static_cast<int>(scratch_samples_.size());
            out[r].candidates =
                workload ? scratch_workload_.totalCandidates : out[r].samples;
            if (workload)
                workload->mergeFrom(scratch_workload_);
        }

        // Stages II+III: the backend's batched forward. Under
        // compaction only gate-occupied samples reach the model; their
        // outputs scatter back while empty slots keep the zeros
        // prepareOutputs() left (exact compositing no-ops).
        batch.prepareOutputs();
        if (compact) {
            SampleBatch &cb =
                record ? tape_compact_batch_ : scratch_compact_batch_;
            std::vector<std::size_t> &cidx =
                record ? tape_compact_index_ : scratch_compact_index_;
            cb.clear();
            cidx.clear();
            for (int r = 0; r < batch.numRays(); ++r) {
                const std::size_t begin = batch.rayBegin(r);
                const std::size_t count = batch.raySampleCount(r);
                int kept = 0;
                for (std::size_t s = begin; s < begin + count; ++s) {
                    if (!grid->occupiedAt(batch.positions[s]))
                        continue;
                    cb.positions.push_back(batch.positions[s]);
                    cb.dirs.push_back(batch.dirs[s]);
                    cb.ts.push_back(batch.ts[s]);
                    cb.dts.push_back(batch.dts[s]);
                    cidx.push_back(s);
                    if (kept == 0)
                        out[static_cast<std::size_t>(r)].firstHitT =
                            batch.ts[s];
                    ++kept;
                }
                out[static_cast<std::size_t>(r)].samples = kept;
            }
            cb.rayOffsets.push_back(cb.positions.size());
            cb.prepareOutputs();
            forward(cb);
            for (std::size_t k = 0; k < cidx.size(); ++k) {
                batch.sigmas[cidx[k]] = cb.sigmas[k];
                batch.rgbs[cidx[k]] = cb.rgbs[k];
            }
            last_compaction_ = {batch.size(), cb.size()};
            noteCompactionMetrics(batch.size(), cb.size());
        } else {
            forward(batch);
            last_compaction_ = {batch.size(), batch.size()};
        }

        // Composite per ray through its CSR range. Each ray reads and
        // writes only its own range/slots, so the parallel split is
        // bit-exact with the serial loop.
        std::vector<CompositeResult> &results =
            record ? tape_results_ : scratch_results_;
        results.resize(rays.size());
        const auto composite_ray = [&](std::size_t r) {
            const std::size_t begin = batch.rayBegin(static_cast<int>(r));
            const std::size_t count = batch.raySampleCount(static_cast<int>(r));
            const CompositeResult cr =
                composite({batch.sigmas.data() + begin, count},
                          {batch.rgbs.data() + begin, count},
                          {batch.dts.data() + begin, count}, render);
            results[r] = cr;
            out[r].color = cr.color;
            out[r].transmittance = cr.transmittance;
            out[r].composited = cr.used;
            // Under compaction firstHitT was already pinned to the
            // first *occupied* sample during the gate probe (matching
            // the gated path); the CSR begin here is the first
            // candidate, occupied or not.
            if (!compact && count > 0)
                out[r].firstHitT = batch.ts[begin];
        };
        if (pool) {
            pool->parallelFor(
                0, static_cast<int>(rays.size()),
                [&](int b, int e) {
                    for (int r = b; r < e; ++r)
                        composite_ray(static_cast<std::size_t>(r));
                },
                kRayCompositeGrain);
        } else {
            for (std::size_t r = 0; r < rays.size(); ++r)
                composite_ray(r);
        }

        if (record) {
            tape_valid_ = true;
            tape_compacted_ = compact;
        }
    }

    /**
     * Composite-backward per ray into the batch-wide per-sample
     * gradient arrays (entries past each ray's used count are zeroed),
     * then one call into @p backward for the backend's batched model
     * backward. Consumes the tape.
     *
     * @param backward void(const SampleBatch &batch,
     *                      std::span<const float> dsigmas,
     *                      std::span<const Vec3f> drgbs).
     */
    template <class BackwardFn>
    void
    backwardRays(const RenderParams &render, std::span<const Vec3f> dcolors,
                 ThreadPool *pool, BackwardFn &&backward)
    {
        if (!tape_valid_)
            panic("%s::backwardRays without a recorded traceRays", owner_);
        const std::size_t num_rays = static_cast<std::size_t>(tape_batch_.numRays());
        if (dcolors.size() < num_rays)
            panic("%s::backwardRays: gradient span too small (%zu < %zu)", owner_,
                  dcolors.size(), num_rays);

        // Rays write disjoint ranges; the only shared state is the
        // scratch buffer, so the parallel split binds one scratch per
        // chunk index.
        tape_dsigmas_.resize(tape_batch_.size());
        tape_drgbs_.resize(tape_batch_.size());
        const auto backward_ray = [&](std::size_t r,
                                      CompositeBackwardScratch &scratch) {
            const std::size_t begin = tape_batch_.rayBegin(static_cast<int>(r));
            const std::size_t count = tape_batch_.raySampleCount(static_cast<int>(r));
            compositeBackward({tape_batch_.sigmas.data() + begin, count},
                              {tape_batch_.rgbs.data() + begin, count},
                              {tape_batch_.dts.data() + begin, count}, render,
                              tape_results_[r], dcolors[r],
                              {tape_dsigmas_.data() + begin, count},
                              {tape_drgbs_.data() + begin, count}, scratch);
        };
        if (pool) {
            const std::size_t num_chunks =
                (num_rays + static_cast<std::size_t>(kRayCompositeGrain) - 1) /
                static_cast<std::size_t>(kRayCompositeGrain);
            if (composite_scratches_.size() < num_chunks)
                composite_scratches_.resize(num_chunks);
            pool->parallelForChunks(
                0, static_cast<int>(num_rays),
                [&](int chunk, int b, int e) {
                    CompositeBackwardScratch &scratch =
                        composite_scratches_[static_cast<std::size_t>(chunk)];
                    for (int r = b; r < e; ++r)
                        backward_ray(static_cast<std::size_t>(r), scratch);
                },
                kRayCompositeGrain);
        } else {
            for (std::size_t r = 0; r < num_rays; ++r)
                backward_ray(r, composite_scratch_);
        }

        if (tape_compacted_) {
            // The model only saw the occupied samples; gather their
            // composite gradients from the full-batch arrays. Empty
            // samples never reached the model, so whatever gradient
            // compositing assigned them is dropped — exactly the gated
            // path's behaviour.
            compact_dsigmas_.resize(tape_compact_index_.size());
            compact_drgbs_.resize(tape_compact_index_.size());
            for (std::size_t k = 0; k < tape_compact_index_.size(); ++k) {
                compact_dsigmas_[k] = tape_dsigmas_[tape_compact_index_[k]];
                compact_drgbs_[k] = tape_drgbs_[tape_compact_index_[k]];
            }
            backward(static_cast<const SampleBatch &>(tape_compact_batch_),
                     std::span<const float>(compact_dsigmas_),
                     std::span<const Vec3f>(compact_drgbs_));
        } else {
            backward(static_cast<const SampleBatch &>(tape_batch_),
                     std::span<const float>(tape_dsigmas_),
                     std::span<const Vec3f>(tape_drgbs_));
        }
        tape_valid_ = false;
    }

  private:
    const char *owner_;

    // Batch tape of the last recorded traceRays.
    SampleBatch tape_batch_;
    std::vector<CompositeResult> tape_results_;
    std::vector<float> tape_dsigmas_;
    std::vector<Vec3f> tape_drgbs_;
    bool tape_valid_ = false;

    // record=false scratch, so inference never disturbs the tape.
    SampleBatch scratch_batch_;
    std::vector<CompositeResult> scratch_results_;
    std::vector<RaySample> scratch_samples_;
    RayWorkload scratch_workload_;
    CompositeBackwardScratch composite_scratch_;
    std::vector<CompositeBackwardScratch> composite_scratches_;

    // Occupancy-compaction state: the compact batch the model sees and
    // the full-batch index of each compact sample, per tape/scratch.
    bool compaction_ = false;
    bool tape_compacted_ = false;
    CompactionStats last_compaction_;
    SampleBatch tape_compact_batch_;
    std::vector<std::size_t> tape_compact_index_;
    SampleBatch scratch_compact_batch_;
    std::vector<std::size_t> scratch_compact_index_;
    std::vector<float> compact_dsigmas_;
    std::vector<Vec3f> compact_drgbs_;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_BATCH_EVALUATOR_H_
