/**
 * @file
 * Per-session frame cache of the serving layer's temporal reprojection
 * mode. A camera *stream* (the millions-of-users workload) sees nearly
 * the same scene frame to frame, so the server keeps each session's
 * last rendered DepthFrame and answers the next request by warping it,
 * ray-marching only the tiles the warp could not reconstruct
 * (src/serve/reproject).
 *
 * The store is a TTL'd, memory-budgeted LRU map keyed by client
 * session id. Every entry remembers which model (and which *epoch* of
 * that model — registry hot-swaps bump it) produced the frame, so a
 * deploy never leaks a stale scene into a warp. All methods are
 * thread-safe; frames are handed out as shared_ptr so eviction never
 * invalidates a render in flight. Lookup/eviction statistics export
 * through obs::MetricsRegistry as "serve.session.*".
 */

#ifndef FUSION3D_SERVE_SESSION_H_
#define FUSION3D_SERVE_SESSION_H_

#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "nerf/image_warp.h"
#include "obs/metrics.h"

namespace fusion3d::serve
{

/** Session-store configuration. */
struct SessionStoreConfig
{
    /** Memory budget over all cached frames; LRU entries are evicted
     *  until the store fits. */
    std::size_t maxBytes = 64ull << 20;
    /** Entries idle longer than this are expired on next touch. */
    double ttlSeconds = 30.0;
    /** Hard cap on live sessions (second LRU trigger). */
    std::size_t maxSessions = 4096;
};

/** What the store keeps per session: the frame plus its provenance. */
struct SessionFrame
{
    std::shared_ptr<const nerf::DepthFrame> frame;
    /** Model that rendered the frame. */
    std::string model;
    /** Registry epoch of that model when the frame was rendered; a
     *  hot-swap bumps the registry's epoch and invalidates this. */
    std::uint64_t epoch = 0;
    /** Tile size the age grid below is expressed in. */
    int tileSize = 0;
    /** Frames since each tile was last truly ray-marched (row-major
     *  tilesX x tilesY); the reprojection renderer refreshes old tiles
     *  in a staggered fashion so error cannot accumulate unboundedly. */
    std::vector<std::uint16_t> tileAge;
};

/** Thread-safe TTL + memory-budgeted LRU session-frame store. */
class SessionStore
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit SessionStore(const SessionStoreConfig &cfg);
    ~SessionStore();

    SessionStore(const SessionStore &) = delete;
    SessionStore &operator=(const SessionStore &) = delete;

    /**
     * Cache @p frame as @p session's latest state, then evict expired
     * and over-budget entries (LRU first). @p now is injectable for
     * tests; production callers use the default.
     */
    void put(const std::string &session, SessionFrame frame,
             Clock::time_point now = Clock::now());

    /**
     * Look up @p session's frame for serving a request against
     * @p model at @p epoch. Returns the frame only when the session is
     * present, within TTL, and its provenance matches; every other
     * case is a classified miss (absent / expired / stale model or
     * epoch). A hit refreshes the entry's LRU position and idle clock.
     */
    std::optional<SessionFrame> get(const std::string &session,
                                    const std::string &model,
                                    std::uint64_t epoch,
                                    Clock::time_point now = Clock::now());

    /** Drop one session (no-op when absent). */
    void erase(const std::string &session);

    /** Live sessions. */
    std::size_t size() const;

    /** Bytes currently held by cached frames. */
    std::size_t bytes() const;

    // Lookup / eviction statistics.
    std::uint64_t hits() const;
    std::uint64_t misses() const; ///< all classified misses combined
    std::uint64_t missesAbsent() const;
    std::uint64_t missesExpired() const;
    std::uint64_t missesStale() const;
    std::uint64_t evictions() const; ///< budget/cap LRU evictions

    const SessionStoreConfig &config() const { return cfg_; }

    /** Approximate bytes a cached @p frame pins (color + depth + age). */
    static std::size_t frameBytes(const SessionFrame &frame);

    /**
     * Register with @p registry as collector @p name (serve.session.*
     * samples). Unregisters any previous registration; the destructor
     * unregisters automatically.
     */
    void registerWith(obs::MetricsRegistry &registry, const std::string &name);

  private:
    struct Entry
    {
        SessionFrame frame;
        Clock::time_point lastAccess{};
        std::size_t bytes = 0;
        /** Position in lru_ (front = most recent). */
        std::list<std::string>::iterator lruPos;
    };

    /** Drop expired entries, then LRU-evict to budget. Caller holds
     *  mutex_. */
    void enforceLimitsLocked(Clock::time_point now);
    void eraseLocked(std::map<std::string, Entry>::iterator it);
    void collect(obs::MetricSink &sink) const;

    mutable std::mutex mutex_;
    SessionStoreConfig cfg_;
    std::map<std::string, Entry> entries_;
    /** Front = most recently used. */
    std::list<std::string> lru_;
    std::size_t bytes_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t miss_absent_ = 0;
    std::uint64_t miss_expired_ = 0;
    std::uint64_t miss_stale_ = 0;
    std::uint64_t evictions_ = 0;

    obs::MetricsRegistry *registry_ = nullptr;
    std::string registered_name_;
};

} // namespace fusion3d::serve

#endif // FUSION3D_SERVE_SESSION_H_
