#include "nerf/camera.h"

#include <cmath>

#include "common/logging.h"

namespace fusion3d::nerf
{

namespace
{
constexpr float kPi = 3.14159265358979323846f;
} // namespace

Camera::Camera(const Vec3f &position, const Vec3f &target, const Vec3f &up,
               float vfov_degrees, int width, int height)
    : position_(position), width_(width), height_(height)
{
    if (width < 1 || height < 1)
        fatal("Camera image size must be positive (%d x %d)", width, height);
    forward_ = normalize(target - position);
    right_ = normalize(cross(forward_, up));
    up_ = cross(right_, forward_);
    tan_half_fov_ = std::tan(vfov_degrees * kPi / 360.0f);
}

Ray
Camera::rayForPixel(int x, int y, float jx, float jy) const
{
    const float aspect = static_cast<float>(width_) / static_cast<float>(height_);
    // NDC in [-1, 1] with y up.
    const float u =
        (2.0f * ((static_cast<float>(x) + jx) / static_cast<float>(width_)) - 1.0f);
    const float v =
        (1.0f - 2.0f * ((static_cast<float>(y) + jy) / static_cast<float>(height_)));
    const Vec3f dir = normalize(forward_ + right_ * (u * tan_half_fov_ * aspect) +
                                up_ * (v * tan_half_fov_));
    return Ray(position_, dir);
}

bool
Camera::project(const Vec3f &world, float &px, float &py, float &depth) const
{
    const Vec3f v = world - position_;
    depth = dot(v, forward_);
    if (depth <= 1e-6f)
        return false; // behind the camera

    const float aspect = static_cast<float>(width_) / static_cast<float>(height_);
    const float u = dot(v, right_) / (depth * tan_half_fov_ * aspect);
    const float ndc_v = dot(v, up_) / (depth * tan_half_fov_);

    px = (u + 1.0f) * 0.5f * static_cast<float>(width_);
    py = (1.0f - ndc_v) * 0.5f * static_cast<float>(height_);
    return px >= 0.0f && px < static_cast<float>(width_) && py >= 0.0f &&
           py < static_cast<float>(height_);
}

Camera
Camera::withResolution(int width, int height) const
{
    if (width < 1 || height < 1)
        fatal("Camera image size must be positive (%d x %d)", width, height);
    Camera c(*this);
    c.width_ = width;
    c.height_ = height;
    return c;
}

Camera
Camera::orbit(const Vec3f &center, float radius, float azim_deg, float elev_deg,
              float vfov_degrees, int width, int height)
{
    const float az = azim_deg * kPi / 180.0f;
    const float el = elev_deg * kPi / 180.0f;
    const Vec3f offset{radius * std::cos(el) * std::cos(az),
                       radius * std::sin(el),
                       radius * std::cos(el) * std::sin(az)};
    return Camera(center + offset, center, Vec3f{0.0f, 1.0f, 0.0f}, vfov_degrees,
                  width, height);
}

} // namespace fusion3d::nerf
