#include "common/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace fusion3d
{

const char *
quantModeName(QuantMode mode)
{
    switch (mode) {
    case QuantMode::fp32:
        return "fp32";
    case QuantMode::fp16:
        return "fp16";
    case QuantMode::int8:
        return "int8";
    }
    return "fp32";
}

bool
parseQuantMode(const char *text, QuantMode *out)
{
    if (text == nullptr || out == nullptr)
        return false;
    if (std::strcmp(text, "fp32") == 0) {
        *out = QuantMode::fp32;
        return true;
    }
    if (std::strcmp(text, "fp16") == 0) {
        *out = QuantMode::fp16;
        return true;
    }
    if (std::strcmp(text, "int8") == 0) {
        *out = QuantMode::int8;
        return true;
    }
    return false;
}

QuantScale
computeScale(std::span<const float> values)
{
    float max_abs = 0.0f;
    for (float v : values)
        max_abs = std::max(max_abs, std::fabs(v));
    QuantScale qs;
    qs.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    return qs;
}

std::vector<std::int8_t>
quantize(std::span<const float> values, QuantScale qs)
{
    std::vector<std::int8_t> out(values.size());
    const float inv = qs.scale > 0.0f ? 1.0f / qs.scale : 0.0f;
    for (std::size_t i = 0; i < values.size(); ++i) {
        const float q = std::round(values[i] * inv);
        out[i] = static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
    }
    return out;
}

std::vector<float>
dequantize(std::span<const std::int8_t> q, QuantScale qs)
{
    std::vector<float> out(q.size());
    for (std::size_t i = 0; i < q.size(); ++i)
        out[i] = static_cast<float>(q[i]) * qs.scale;
    return out;
}

void
fakeQuantizeInPlace(std::span<float> values)
{
    const QuantScale qs = computeScale(values);
    const float inv = qs.scale > 0.0f ? 1.0f / qs.scale : 0.0f;
    for (float &v : values) {
        const float q = std::clamp(std::round(v * inv), -127.0f, 127.0f);
        v = q * qs.scale;
    }
}

double
quantizationRmse(std::span<const float> values)
{
    if (values.empty())
        return 0.0;
    const QuantScale qs = computeScale(values);
    const float inv = qs.scale > 0.0f ? 1.0f / qs.scale : 0.0f;
    double acc = 0.0;
    for (float v : values) {
        const float q = std::clamp(std::round(v * inv), -127.0f, 127.0f);
        const double e = static_cast<double>(v) - q * qs.scale;
        acc += e * e;
    }
    return std::sqrt(acc / static_cast<double>(values.size()));
}

} // namespace fusion3d
