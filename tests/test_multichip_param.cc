/** @file Parameterized multi-chip system tests: invariants across chip
 *  counts, plus I/O and communication model properties. */

#include <gtest/gtest.h>

#include "multichip/system.h"
#include "nerf/moe.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

namespace fusion3d::multichip
{
namespace
{

nerf::MoeConfig
moeFor(int experts)
{
    nerf::MoeConfig mc;
    mc.numExperts = experts;
    mc.expert.model.grid.levels = 4;
    mc.expert.model.grid.log2TableSize = 11;
    mc.expert.model.grid.baseResolution = 8;
    mc.expert.model.grid.maxResolution = 32;
    mc.expert.model.densityHidden = 16;
    mc.expert.model.colorHidden = 16;
    mc.expert.model.geoFeatures = 7;
    mc.expert.model.shDegree = 2;
    mc.expert.sampler.maxSamplesPerRay = 16;
    mc.expert.occupancyResolution = 16;
    return mc;
}

void
bootstrap(nerf::MoeNerf &moe, const scenes::Scene &scene)
{
    Pcg32 rng(1, 1);
    for (int k = 0; k < moe.numExperts(); ++k) {
        moe.expert(k).grid().update(
            [&scene](const Vec3f &p) { return scene.density(p); }, rng, 0.0f);
        moe.expert(k).grid().maskRegion(
            [&moe, k](const Vec3f &p) { return moe.regionOf(p) == k; });
    }
}

class SystemScaling : public ::testing::TestWithParam<int>
{
};

TEST_P(SystemScaling, InvariantsHoldAtEveryChipCount)
{
    const int chips = GetParam();
    const auto scene = scenes::makeNerf360Scene("room");
    nerf::MoeNerf moe(moeFor(chips));
    bootstrap(moe, *scene);

    SystemConfig sc;
    sc.numChips = chips;
    const MultiChipSystem sys(sc);

    const nerf::Camera cam = nerf::Camera::orbit({0.5f, 0.4f, 0.5f}, 0.38f, 20.0f,
                                                 10.0f, 70.0f, 64, 64);
    const auto r = sys.evaluateInference(moe, cam, 128);

    ASSERT_EQ(r.chips.size(), static_cast<std::size_t>(chips));
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GE(r.computeSeconds, 0.0);
    EXPECT_GE(r.imbalance, 1.0);
    EXPECT_GT(r.totalPoints, 0u);
    EXPECT_GT(r.energyJ, 0.0);
    // MoE communication always beats layer-split.
    EXPECT_LT(r.moeCommBytes, r.layerSplitCommBytes);
    EXPECT_GT(r.commSavingFraction(), 0.5);
    // Physical budgets scale with chip count.
    EXPECT_NEAR(sys.totalPowerW(), chips * 1.5 * 1.01, 0.05 * chips);
    EXPECT_GT(sys.totalAreaMm2(), chips * 8.7);
}

INSTANTIATE_TEST_SUITE_P(ChipCounts, SystemScaling, ::testing::Values(1, 2, 3, 4, 8));

TEST(System, MismatchedExpertCountIsFatal)
{
    const auto scene = scenes::makeNerf360Scene("room");
    nerf::MoeNerf moe(moeFor(2));
    bootstrap(moe, *scene);
    SystemConfig sc;
    sc.numChips = 4;
    const MultiChipSystem sys(sc);
    const nerf::Camera cam = nerf::Camera::orbit({0.5f, 0.4f, 0.5f}, 0.38f, 20.0f,
                                                 10.0f, 70.0f, 16, 16);
    EXPECT_DEATH({ (void)sys.evaluateInference(moe, cam, 8); }, "experts");
}

TEST(System, TrainingCostsMoreThanInference)
{
    const auto scene = scenes::makeNerf360Scene("garden");
    nerf::MoeNerf moe(moeFor(4));
    bootstrap(moe, *scene);
    const MultiChipSystem sys((SystemConfig()));

    const nerf::Camera cam = nerf::Camera::orbit({0.5f, 0.4f, 0.5f}, 0.38f, 20.0f,
                                                 10.0f, 70.0f, 64, 64);
    const auto inf = sys.evaluateInference(moe, cam, 256);

    // Same ray population as a training batch of equal size.
    scenes::DatasetConfig dc = scenes::nerf360Rig(16);
    dc.trainViews = 2;
    dc.testViews = 1;
    dc.reference.steps = 48;
    const nerf::Dataset ds = scenes::makeDataset(*scene, dc);
    const auto trn = sys.evaluateTraining(moe, ds, 256);

    // Per-point training throughput must be ~3x lower than inference
    // (the three-slot Stage-II update).
    const double inf_rate = inf.throughputPointsPerSec();
    const double trn_rate = trn.throughputPointsPerSec();
    EXPECT_GT(inf_rate, 1.5 * trn_rate);
}

TEST(ChipletIoModel, MonotoneInModelSize)
{
    ChipletIoModel model;
    double prev = 0.0;
    for (double mb = 1.0; mb <= 256.0; mb *= 2.0) {
        const double a = model.areaMm2(mb * 1024.0 * 1024.0);
        EXPECT_GE(a, prev);
        prev = a;
    }
}

TEST(IoModule, OverheadsScaleWithChips)
{
    const IoModule io;
    const chip::ChipConfig c = chip::ChipConfig::scaledUp();
    EXPECT_LT(io.areaMm2(c, 2), io.areaMm2(c, 8));
    EXPECT_LT(io.powerW(c, 2), io.powerW(c, 8));
    // The published overheads are small: < 1% area, < 3% SRAM.
    EXPECT_LT(io.areaMm2(c, 4) / (4 * c.dieAreaMm2), 0.01);
    EXPECT_LT(io.sramKb(c, 4) / (4.0 * c.totalSramKb()), 0.03);
}

} // namespace
} // namespace fusion3d::multichip
