/**
 * @file
 * Registry of deployed models. Owns the deserialized `.f3dm` NeRF
 * models keyed by name, each paired with an occupancy gate rebuilt
 * from its own density field at registration time — after which an
 * entry is immutable, so render workers share it without locks.
 *
 * Deploy-from-file is hardened for lossy storage: addFromFile retries
 * failed loads with capped exponential backoff, and a per-model circuit
 * breaker stops hammering a broken artifact after K consecutive
 * failures, half-opening for a single probe once its cooldown elapses.
 * Deploy attempts, retries, and breaker transitions are counted and
 * exported through obs::MetricsRegistry ("serve.registry.*"). The
 * "serve.load.io" fault point injects load failures for chaos testing.
 */

#ifndef FUSION3D_SERVE_MODEL_REGISTRY_H_
#define FUSION3D_SERVE_MODEL_REGISTRY_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nerf/nerf_model.h"
#include "nerf/occupancy_grid.h"
#include "nerf/serialize.h"
#include "obs/metrics.h"

namespace fusion3d::serve
{

/** One deployed model: weights plus its inference occupancy gate. */
struct ModelEntry
{
    std::string name;
    std::unique_ptr<nerf::NerfModel> model;
    nerf::OccupancyGrid grid;
    /** Deploy generation of this name: 1 on first add, bumped by every
     *  replacement (hot-swap). Cached artifacts derived from a model —
     *  session frames in the reprojection cache above all — carry the
     *  epoch and go stale when it moves. */
    std::uint64_t epoch = 0;

    ModelEntry(std::string n, std::unique_ptr<nerf::NerfModel> m, int grid_res,
               float grid_threshold)
        : name(std::move(n)), model(std::move(m)), grid(grid_res, grid_threshold)
    {
    }
};

/** Per-model deploy circuit-breaker state. */
enum class BreakerState
{
    closed,   ///< deploys flow normally
    open,     ///< deploys are rejected until the cooldown elapses
    halfOpen, ///< one probe deploy is allowed through
};

/** Human-readable name of @p state. */
const char *breakerStateName(BreakerState state);

/** Registry configuration: gate parameters plus deploy hardening. */
struct RegistryConfig
{
    /** Gate resolution of registered models. */
    int occupancyResolution = 48;
    /** Density above which a gate cell is live. */
    float occupancyThreshold = 0.01f;
    /** Load attempts per addFromFile call (>= 1). */
    int loadMaxAttempts = 3;
    /** Delay before the first retry; doubles (multiplier) per retry. */
    double backoffInitialMs = 1.0;
    double backoffMultiplier = 2.0;
    /** Backoff cap. */
    double backoffMaxMs = 50.0;
    /** Consecutive failed addFromFile calls (per model) that trip the
     *  breaker open. */
    int breakerThreshold = 3;
    /** Open time before the breaker half-opens for one probe. */
    double breakerCooldownMs = 250.0;
};

/** Thread-safe name → model map; entries are immutable once added. */
class ModelRegistry
{
  public:
    /** Gate-parameter shorthand for RegistryConfig defaults. */
    explicit ModelRegistry(int occupancy_resolution = 48,
                           float occupancy_threshold = 0.01f);

    explicit ModelRegistry(const RegistryConfig &cfg);

    ~ModelRegistry();

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Register @p model under @p name, building its occupancy gate
     * from the model's density field. Replaces an existing entry of
     * the same name.
     * @return the registered (immutable) entry.
     */
    const ModelEntry *add(const std::string &name,
                          std::unique_ptr<nerf::NerfModel> model);

    /**
     * Deserialize a `.f3dm` artifact and register it, retrying with
     * capped exponential backoff. Repeated failures trip the model's
     * circuit breaker; while it is open, calls return the failure
     * immediately without touching storage.
     * @return LoadStatus::ok on success (for a breaker-open reject,
     *         LoadStatus::ioError; breakerState() tells the two apart).
     */
    nerf::LoadStatus addFromFile(const std::string &name, const std::string &path);

    /** @return the entry named @p name, or nullptr. */
    const ModelEntry *find(const std::string &name) const;

    /** Registered model count. */
    std::size_t size() const;

    /** Names of all registered models, sorted. */
    std::vector<std::string> names() const;

    /** Deploy-breaker state of @p name (closed if never deployed). */
    BreakerState breakerState(const std::string &name) const;

    /** Current deploy epoch of @p name (0 if never registered). */
    std::uint64_t epoch(const std::string &name) const;

    const RegistryConfig &config() const { return cfg_; }

    // Deploy statistics (also exported as serve.registry.* metrics).
    std::uint64_t loadsSucceeded() const;
    std::uint64_t loadsFailed() const;
    std::uint64_t loadRetries() const;
    std::uint64_t breakerTrips() const;
    std::uint64_t breakerOpenRejects() const;

  private:
    struct Breaker
    {
        BreakerState state = BreakerState::closed;
        int consecutiveFailures = 0;
        std::uint64_t trips = 0;
        std::chrono::steady_clock::time_point openedAt{};
    };

    void collect(obs::MetricSink &sink) const;

    mutable std::mutex mutex_;
    RegistryConfig cfg_;
    std::map<std::string, std::unique_ptr<ModelEntry>> entries_;
    /** Replaced entries are retired, not destroyed, so workers still
     *  rendering from them never hold a dangling pointer. */
    std::vector<std::unique_ptr<ModelEntry>> retired_;
    std::map<std::string, Breaker> breakers_;
    /** Deploy generations per name (survives entry replacement). */
    std::map<std::string, std::uint64_t> epochs_;

    std::uint64_t loads_ok_ = 0;
    std::uint64_t loads_failed_ = 0;
    std::uint64_t load_retries_ = 0;
    std::uint64_t breaker_trips_ = 0;
    std::uint64_t breaker_rejects_ = 0;

    std::string collector_name_;
};

} // namespace fusion3d::serve

#endif // FUSION3D_SERVE_MODEL_REGISTRY_H_
