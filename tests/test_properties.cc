/** @file Parameterized property sweeps (TEST_P) across configuration
 *  spaces: tiling bijection for every table size, scheduler dominance
 *  for every core count, encoding partition-of-unity for every level
 *  count, and compositing invariants across densities. */

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "chip/hash_tiler.h"
#include "chip/sampling_module.h"
#include "common/rng.h"
#include "nerf/hash_encoding.h"
#include "nerf/renderer.h"

namespace fusion3d
{
namespace
{

// ---------------------------------------------------------------------------
// Tiling bijection holds for every power-of-two table size.
// ---------------------------------------------------------------------------

class TilerBijection : public ::testing::TestWithParam<int>
{
};

TEST_P(TilerBijection, EightCornersHitEightBanks)
{
    const int log2_size = GetParam();
    const std::uint32_t mask = (1u << log2_size) - 1;
    const chip::HashTiler tiler(chip::BankPolicy::TwoLevelTiling, 8);
    Pcg32 rng(static_cast<std::uint64_t>(log2_size));
    for (int trial = 0; trial < 800; ++trial) {
        const Vec3i base{static_cast<int>(rng.nextBounded(1 << 18)),
                         static_cast<int>(rng.nextBounded(1 << 18)),
                         static_cast<int>(rng.nextBounded(1 << 18))};
        std::set<std::uint32_t> banks;
        for (int c = 0; c < 8; ++c) {
            const Vec3i v{base.x + (c & 1), base.y + ((c >> 1) & 1),
                          base.z + ((c >> 2) & 1)};
            banks.insert(
                tiler.bankOf(v, nerf::HashGridEncoding::hashCoords(v, mask)));
        }
        ASSERT_EQ(banks.size(), 8u);
    }
}

INSTANTIATE_TEST_SUITE_P(TableSizes, TilerBijection,
                         ::testing::Values(10, 11, 12, 13, 14, 15, 16, 18, 20));

// ---------------------------------------------------------------------------
// Dynamic scheduling never loses to ray-serial, for any core count.
// ---------------------------------------------------------------------------

class SchedulerDominance : public ::testing::TestWithParam<int>
{
};

TEST_P(SchedulerDominance, DynamicNeverSlower)
{
    const int cores = GetParam();
    chip::ChipConfig cfg = chip::ChipConfig::scaledUp();
    cfg.samplingCores = cores;

    Pcg32 rng(static_cast<std::uint64_t>(cores) * 7919);
    std::vector<nerf::RayWorkload> rays;
    for (int i = 0; i < 300; ++i) {
        nerf::RayWorkload wl;
        const int pairs = 1 + static_cast<int>(rng.nextBounded(3));
        for (int p = 0; p < pairs && p < cores; ++p) {
            nerf::RayCubePair pair;
            pair.octant = p;
            pair.candidates = 1 + static_cast<int>(rng.nextBounded(80));
            pair.valid = pair.candidates;
            wl.pairs.push_back(pair);
            wl.totalCandidates += pair.candidates;
            wl.totalValid += pair.valid;
        }
        rays.push_back(wl);
    }

    const auto dyn =
        chip::SamplingModule(cfg, chip::SamplingSchedule::Dynamic).run(rays);
    const auto ser =
        chip::SamplingModule(cfg, chip::SamplingSchedule::RaySerial).run(rays);
    EXPECT_LE(dyn.totalCycles, ser.totalCycles);
    EXPECT_EQ(dyn.candidatesMarched, ser.candidatesMarched);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, SchedulerDominance,
                         ::testing::Values(4, 8, 12, 16, 24, 32));

// ---------------------------------------------------------------------------
// Hash-grid interpolation weights form a partition of unity at every
// level count: encoding a constant field returns the constant.
// ---------------------------------------------------------------------------

class EncodingPartition : public ::testing::TestWithParam<int>
{
};

TEST_P(EncodingPartition, ConstantFieldReproduced)
{
    nerf::HashGridConfig cfg;
    cfg.levels = GetParam();
    cfg.featuresPerLevel = 1;
    cfg.log2TableSize = 14;
    cfg.baseResolution = 4;
    cfg.maxResolution = 4 << (cfg.levels - 1) > 256 ? 256 : 4 << (cfg.levels - 1);
    nerf::HashGridEncoding enc(cfg);
    for (float &p : enc.params())
        p = 0.625f;

    std::vector<float> out(static_cast<std::size_t>(cfg.encodedDims()));
    Pcg32 rng(static_cast<std::uint64_t>(cfg.levels));
    for (int i = 0; i < 200; ++i) {
        enc.encode(rng.nextVec3(), out);
        for (int l = 0; l < cfg.levels; ++l)
            ASSERT_NEAR(out[static_cast<std::size_t>(l)], 0.625f, 1e-4f);
    }
}

INSTANTIATE_TEST_SUITE_P(LevelCounts, EncodingPartition,
                         ::testing::Values(1, 2, 4, 6, 8, 12, 16));

// ---------------------------------------------------------------------------
// Compositing invariants across density magnitudes.
// ---------------------------------------------------------------------------

class CompositeInvariant : public ::testing::TestWithParam<float>
{
};

TEST_P(CompositeInvariant, ColorBoundedAndTransmittanceDecreases)
{
    const float sigma = GetParam();
    nerf::RenderParams params;
    Pcg32 rng(31);
    std::vector<float> sigmas(24, sigma);
    std::vector<float> dts(24, 0.03f);
    std::vector<Vec3f> rgbs;
    for (int i = 0; i < 24; ++i)
        rgbs.push_back(rng.nextVec3());

    const auto r = nerf::composite(sigmas, rgbs, dts, params);
    EXPECT_GE(r.transmittance, 0.0f);
    EXPECT_LE(r.transmittance, 1.0f + 1e-6f);
    EXPECT_GE(minComp(r.color), 0.0f);
    EXPECT_LE(maxComp(r.color), 1.0f + 1e-5f); // convex combination
    EXPECT_GE(r.used, 1);
    EXPECT_LE(r.used, 24);
    // Higher density composites fewer samples before termination.
    if (sigma > 1000.0f) {
        EXPECT_LT(r.used, 24);
    }
}

INSTANTIATE_TEST_SUITE_P(Densities, CompositeInvariant,
                         ::testing::Values(0.0f, 0.5f, 2.0f, 10.0f, 50.0f, 200.0f,
                                           2000.0f, 50000.0f));

// ---------------------------------------------------------------------------
// X-parity flip holds for every table size and both dense/hashed modes.
// ---------------------------------------------------------------------------

class ParityProperty : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ParityProperty, XNeighborFlipsParity)
{
    const auto [log2_size, resolution] = GetParam();
    nerf::HashGridConfig cfg;
    cfg.levels = 1;
    cfg.featuresPerLevel = 1;
    cfg.log2TableSize = log2_size;
    cfg.baseResolution = resolution;
    cfg.maxResolution = resolution;
    nerf::HashGridEncoding enc(cfg);

    Pcg32 rng(static_cast<std::uint64_t>(log2_size * 131 + resolution));
    for (int i = 0; i < 500; ++i) {
        const int max_c = resolution; // vertices go to resolution (incl.)
        const Vec3i v{static_cast<int>(rng.nextBounded(max_c)),
                      static_cast<int>(rng.nextBounded(max_c + 1)),
                      static_cast<int>(rng.nextBounded(max_c + 1))};
        const std::uint32_t a0 = enc.vertexIndex(0, v);
        const std::uint32_t a1 = enc.vertexIndex(0, {v.x + 1, v.y, v.z});
        ASSERT_NE(a0 & 1u, a1 & 1u)
            << (enc.isDense(0) ? "dense" : "hashed") << " level, res " << resolution;
    }
}

INSTANTIATE_TEST_SUITE_P(SizesAndResolutions, ParityProperty,
                         ::testing::Combine(::testing::Values(10, 12, 14, 16),
                                            ::testing::Values(4, 8, 16, 32, 64, 128)));

} // namespace
} // namespace fusion3d
