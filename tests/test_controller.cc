/** @file Tests of the controller's macro-pipeline schedule: the analytic
 *  recurrence must agree cycle-exactly with the event-driven machine,
 *  and the memory clusters must size ray batches correctly. */

#include <vector>

#include <gtest/gtest.h>

#include "chip/controller.h"
#include "chip/memory_cluster.h"
#include "common/rng.h"
#include "sim/clocked.h"

namespace fusion3d::chip
{
namespace
{

TEST(PipelineCycles, EmptyAndSingle)
{
    EXPECT_EQ(pipelineCycles({}), 0u);
    const std::vector<BatchCost> one{{5, 7, 3}};
    // Serial through three stages: 5 + 7 + 3.
    EXPECT_EQ(pipelineCycles(one), 15u);
}

TEST(PipelineCycles, SteadyStateBoundBySlowestStage)
{
    // Many equal batches: total -> fill + n * slowest.
    std::vector<BatchCost> batches(50, BatchCost{2, 10, 3});
    const Cycles total = pipelineCycles(batches);
    // Fill = 2 + 10 + 3 = 15 for batch 0, then ~10/batch.
    EXPECT_EQ(total, 15u + 49u * 10u);
}

TEST(PipelineCycles, BackpressureFromDownstream)
{
    // Stage 3 is the bottleneck: stage 1/2 must stall on the ping-pong
    // buffer rather than run ahead unboundedly.
    std::vector<BatchCost> batches(20, BatchCost{1, 1, 50});
    const Cycles total = pipelineCycles(batches);
    EXPECT_EQ(total, 1u + 1u + 20u * 50u);
}

TEST(PipelinedMachine, MatchesRecurrenceOnFixedCase)
{
    const std::vector<BatchCost> batches{{3, 5, 2}, {4, 1, 6}, {2, 8, 1}, {5, 5, 5}};
    PipelinedMachine machine(batches);
    sim::Simulator sim;
    sim.add(&machine);
    sim.run();
    EXPECT_EQ(machine.finishCycle(), pipelineCycles(batches));
}

/** Property: event-driven and analytic models agree on random inputs. */
TEST(PipelinedMachine, MatchesRecurrenceProperty)
{
    Pcg32 rng(99);
    for (int trial = 0; trial < 60; ++trial) {
        const int n = 1 + static_cast<int>(rng.nextBounded(30));
        std::vector<BatchCost> batches;
        for (int b = 0; b < n; ++b) {
            batches.push_back({1 + rng.nextBounded(40), 1 + rng.nextBounded(40),
                               1 + rng.nextBounded(40)});
        }
        PipelinedMachine machine(batches);
        sim::Simulator sim;
        sim.add(&machine);
        sim.run();
        ASSERT_EQ(machine.finishCycle(), pipelineCycles(batches))
            << "trial " << trial << " with " << n << " batches";
    }
}

TEST(PipelinedMachine, BusyCyclesMatchWork)
{
    const std::vector<BatchCost> batches{{3, 5, 2}, {4, 1, 6}};
    PipelinedMachine machine(batches);
    sim::Simulator sim;
    sim.add(&machine);
    sim.run();
    EXPECT_EQ(machine.busyCycles(0), 7u);
    EXPECT_EQ(machine.busyCycles(1), 6u);
    EXPECT_EQ(machine.busyCycles(2), 8u);
}

TEST(PipelineCycles, RejectsZeroCostStages)
{
    const std::vector<BatchCost> bad{{0, 1, 1}};
    EXPECT_DEATH({ (void)pipelineCycles(bad); }, "stage costs");
}

TEST(MemoryCluster, CapacityAndPlan)
{
    ChipConfig cfg = ChipConfig::scaledUp(); // 92 KB per cluster
    const MemoryCluster cluster(cfg, /*boundaries=*/2);
    EXPECT_EQ(cluster.capacityBytes(), 92u * 1024u);
    EXPECT_EQ(cluster.halfCapacity(), 92u * 1024u / 4u);

    // A Stage-I -> II hand-off of 16-byte samples.
    const BufferPlan fits = cluster.plan(1000, 16);
    EXPECT_TRUE(fits.fits);
    EXPECT_EQ(fits.spillBytes, 0u);

    const BufferPlan spills = cluster.plan(4096, 16);
    EXPECT_FALSE(spills.fits);
    EXPECT_EQ(spills.spillBytes, 4096u * 16u - cluster.halfCapacity());
}

TEST(MemoryCluster, MaxBatchSizing)
{
    const MemoryCluster cluster(ChipConfig::scaledUp(), 2);
    const std::uint64_t max_pts = cluster.maxBatchPoints(16);
    EXPECT_TRUE(cluster.plan(max_pts, 16).fits);
    EXPECT_FALSE(cluster.plan(max_pts + 1, 16).fits);
    EXPECT_EQ(cluster.maxBatchPoints(0), 0u);
}

TEST(MemoryCluster, ClusterCountCoversBatch)
{
    // The scaled-up chip's five clusters must hold a realistic Stage
    // II -> III batch: 64-byte per-point features for a 4096-point
    // batch needs several clusters, but fits the chip total.
    const ChipConfig cfg = ChipConfig::scaledUp();
    const MemoryCluster cluster(cfg, 2);
    const Bytes per_cluster = cluster.halfCapacity();
    const Bytes batch = 2048ull * 64ull;
    const int needed = static_cast<int>((batch + per_cluster - 1) / per_cluster);
    EXPECT_LE(needed, cfg.memoryClusters * 2);
}

} // namespace
} // namespace fusion3d::chip
