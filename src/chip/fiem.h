/**
 * @file
 * FP-INT Efficient Multiplier (FIEM, Technique T2-2): multiplies a
 * floating-point feature by an integer interpolation weight without
 * first converting the integer to floating point. The significand is
 * multiplied by the integer directly and the exponent is carried
 * through, replacing an INT2FP unit + full FPMUL.
 *
 * The functional model here is bit-exact: because an 11-bit significand
 * times an 8-bit integer fits in 19 bits (< the 24-bit single-precision
 * significand), the result is exact and must equal the float reference
 * — a property the tests assert exhaustively. The matching area/power
 * model lives in hw_cost.h (fiem_cost).
 */

#ifndef FUSION3D_CHIP_FIEM_H_
#define FUSION3D_CHIP_FIEM_H_

#include <cstdint>

#include "common/half.h"

namespace fusion3d::chip
{

/**
 * FIEM datapath: Half x signed integer, exact single-precision result.
 * Handles zero, subnormal, infinity and NaN inputs like IEEE multiply.
 */
float fiemMultiply(Half feature, std::int32_t weight);

/**
 * FIEM with a half-precision result register: the exact product passes
 * through the round-to-nearest-even normalize/round stage.
 */
Half fiemMultiplyHalf(Half feature, std::int32_t weight);

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_FIEM_H_
