/** @file Tests of the full point-wise radiance model, including an
 *  end-to-end gradient check through encoding, MLPs and activations. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nerf/nerf_model.h"

namespace fusion3d::nerf
{
namespace
{

NerfModelConfig
tinyConfig()
{
    NerfModelConfig cfg;
    cfg.grid.levels = 4;
    cfg.grid.featuresPerLevel = 2;
    cfg.grid.log2TableSize = 10;
    cfg.grid.baseResolution = 4;
    cfg.grid.maxResolution = 32;
    cfg.geoFeatures = 7;
    cfg.densityHidden = 16;
    cfg.colorHidden = 16;
    cfg.shDegree = 2;
    return cfg;
}

TEST(NerfModel, OutputRanges)
{
    NerfModel model(tinyConfig());
    PointWorkspace ws = model.makeWorkspace();
    Pcg32 rng(1);
    for (int i = 0; i < 200; ++i) {
        const PointEval pe =
            model.forwardPoint(rng.nextVec3(), rng.nextUnitVector(), ws);
        EXPECT_GT(pe.sigma, 0.0f);           // exp activation
        EXPECT_TRUE(std::isfinite(pe.sigma));
        for (int c = 0; c < 3; ++c) {
            EXPECT_GE(pe.rgb[c], 0.0f);      // sigmoid
            EXPECT_LE(pe.rgb[c], 1.0f);
        }
    }
}

TEST(NerfModel, DensityActivationAndGrad)
{
    EXPECT_FLOAT_EQ(NerfModel::densityActivation(0.0f), 1.0f);
    EXPECT_NEAR(NerfModel::densityActivation(1.0f), std::exp(1.0f), 1e-5f);
    // Clamped below.
    EXPECT_FLOAT_EQ(NerfModel::densityActivation(-100.0f), std::exp(-15.0f));
    EXPECT_FLOAT_EQ(NerfModel::densityActivationGrad(-100.0f, 1.0f), 0.0f);
    const float s = NerfModel::densityActivation(0.5f);
    EXPECT_FLOAT_EQ(NerfModel::densityActivationGrad(0.5f, s), s);
}

TEST(NerfModel, QueryDensityMatchesForwardPoint)
{
    NerfModel model(tinyConfig());
    PointWorkspace ws = model.makeWorkspace();
    const Vec3f p{0.3f, 0.6f, 0.2f};
    const float d = model.queryDensity(p, ws);
    const PointEval pe = model.forwardPoint(p, {0.0f, 0.0f, 1.0f}, ws);
    EXPECT_FLOAT_EQ(d, pe.sigma);
}

TEST(NerfModel, ViewDependenceFlowsThroughColor)
{
    NerfModel model(tinyConfig());
    // Randomize color-net weights enough that SH inputs matter.
    Pcg32 rng(2);
    for (float &w : model.colorNet().params())
        w = rng.nextRange(-0.5f, 0.5f);
    PointWorkspace ws = model.makeWorkspace();
    const Vec3f p{0.5f, 0.5f, 0.5f};
    const PointEval a = model.forwardPoint(p, {0.0f, 0.0f, 1.0f}, ws);
    const PointEval b = model.forwardPoint(p, {1.0f, 0.0f, 0.0f}, ws);
    EXPECT_FLOAT_EQ(a.sigma, b.sigma); // density is view-independent
    EXPECT_NE(a.rgb, b.rgb);           // color is view-dependent
}

/** Full-model gradient check: d(loss)/d(params) via backwardPoint vs
 *  central finite differences, for a loss touching sigma and rgb. */
TEST(NerfModel, EndToEndGradientCheck)
{
    NerfModel model(tinyConfig(), 99);
    Pcg32 rng(3);
    // Non-trivial weights everywhere.
    for (float &w : model.encoding().params())
        w = rng.nextRange(-0.3f, 0.3f);

    PointWorkspace ws = model.makeWorkspace();
    const Vec3f pos{0.41f, 0.33f, 0.77f};
    const Vec3f dir = normalize(Vec3f{0.3f, -0.5f, 0.8f});
    const float dsigma = 0.7f;
    const Vec3f drgb{0.5f, -0.25f, 1.0f};

    const auto loss = [&]() {
        const PointEval pe = model.forwardPoint(pos, dir, ws);
        return pe.sigma * dsigma + dot(pe.rgb, drgb);
    };

    model.zeroGrads();
    model.backwardPoint(pos, dir, dsigma, drgb, ws);

    // Check encoding gradients (a sparse sample of touched entries).
    int checked = 0;
    for (std::size_t i = 0; i < model.encoding().paramCount() && checked < 20; ++i) {
        const float g = model.encoding().grads()[i];
        if (g == 0.0f)
            continue;
        const float eps = 1e-3f;
        float &p = model.encoding().params()[i];
        const float orig = p;
        p = orig + eps;
        const float lp = loss();
        p = orig - eps;
        const float lm = loss();
        p = orig;
        EXPECT_NEAR(g, (lp - lm) / (2 * eps), 0.05f * (1.0f + std::fabs(g)))
            << "encoding param " << i;
        ++checked;
    }
    EXPECT_GT(checked, 5);

    // Check density-net weight gradients.
    for (std::size_t i = 0; i < model.densityNet().paramCount(); i += 61) {
        const float g = model.densityNet().grads()[i];
        const float eps = 1e-3f;
        float &p = model.densityNet().params()[i];
        const float orig = p;
        p = orig + eps;
        const float lp = loss();
        p = orig - eps;
        const float lm = loss();
        p = orig;
        EXPECT_NEAR(g, (lp - lm) / (2 * eps), 0.05f * (1.0f + std::fabs(g)))
            << "density param " << i;
    }

    // Check color-net weight gradients.
    for (std::size_t i = 0; i < model.colorNet().paramCount(); i += 37) {
        const float g = model.colorNet().grads()[i];
        const float eps = 1e-3f;
        float &p = model.colorNet().params()[i];
        const float orig = p;
        p = orig + eps;
        const float lp = loss();
        p = orig - eps;
        const float lm = loss();
        p = orig;
        EXPECT_NEAR(g, (lp - lm) / (2 * eps), 0.05f * (1.0f + std::fabs(g)))
            << "color param " << i;
    }
}

TEST(NerfModel, ParamAndMacCounts)
{
    NerfModel model(tinyConfig());
    EXPECT_EQ(model.paramCount(),
              model.encoding().paramCount() + model.densityNet().paramCount() +
                  model.colorNet().paramCount());
    // density: 8 -> 16 -> 8; color: (7+4)=11 -> 16 -> 3.
    EXPECT_EQ(model.macsPerPoint(),
              model.densityNet().forwardMacs() + model.colorNet().forwardMacs());
    EXPECT_GT(model.macsPerPoint(), 100u);
}

} // namespace
} // namespace fusion3d::nerf
