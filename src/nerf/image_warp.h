/**
 * @file
 * Image-warping frame reuse, the technique MetaVRain [13] relies on for
 * real-time rates (Table III footnote: real-time only when > 97% of
 * pixels overlap the previous frame). Implemented here as an extension
 * so the bench can quantify when warping suffices and when the
 * end-to-end accelerator's full re-render is required.
 *
 * The previous frame's pixels are lifted to 3D with the composited
 * depth map and splatted into the new view (forward warping with a
 * z-buffer); uncovered pixels must be re-rendered.
 */

#ifndef FUSION3D_NERF_IMAGE_WARP_H_
#define FUSION3D_NERF_IMAGE_WARP_H_

#include <vector>

#include "common/image.h"
#include "nerf/camera.h"

namespace fusion3d::nerf
{

/** A rendered frame with its per-pixel termination depth. */
struct DepthFrame
{
    Image color;
    /** Ray-parameter depth per pixel (same layout as color). */
    std::vector<float> depth;
    Camera camera;
};

/** Result of warping a frame into a new view. */
struct WarpResult
{
    Image image;
    /** Per-pixel flag: true where the warp produced a value. */
    std::vector<bool> covered;
    /** Fraction of target pixels covered by the warp. */
    double coverage = 0.0;
};

/**
 * Forward-warp @p prev into @p target_camera with z-buffered splatting.
 * Each source pixel is splatted into a 2x2 footprint so small motions
 * do not leave pinholes.
 */
WarpResult forwardWarp(const DepthFrame &prev, const Camera &target_camera);

/**
 * Effective speedup of warp-assisted rendering: only uncovered pixels
 * are re-rendered, plus a fixed @p warp_overhead fraction of a full
 * frame for the warp pass itself.
 */
double warpAssistSpeedup(double coverage, double warp_overhead = 0.05);

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_IMAGE_WARP_H_
