/**
 * @file
 * Ground-truth renderer: dense volumetric ray marching of an analytic
 * scene. This produces the posed "photographs" the NeRF trains against,
 * using the same compositing math as the NeRF pipeline so the target is
 * exactly representable.
 */

#ifndef FUSION3D_SCENES_REFERENCE_RENDERER_H_
#define FUSION3D_SCENES_REFERENCE_RENDERER_H_

#include "common/image.h"
#include "nerf/camera.h"
#include "nerf/renderer.h"
#include "scenes/scene.h"

namespace fusion3d::scenes
{

/** Reference-render settings. */
struct ReferenceConfig
{
    /** Marching steps across the cube diagonal (denser than the NeRF). */
    int steps = 192;
    nerf::RenderParams render;
};

/** Composite one ray against the analytic scene. */
Vec3f referenceTrace(const Scene &scene, const Ray &ray, const ReferenceConfig &cfg);

/** Render a full view of the analytic scene. */
Image referenceRender(const Scene &scene, const nerf::Camera &camera,
                      const ReferenceConfig &cfg);

} // namespace fusion3d::scenes

#endif // FUSION3D_SCENES_REFERENCE_RENDERER_H_
