#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"

namespace fusion3d::obs
{

namespace
{

std::atomic<bool> g_enabled{true};

/** Escape a log line for embedding in a JSON string literal. */
std::string
jsonEscape(const char *text)
{
    std::string out;
    for (const char *p = text; *p; ++p) {
        const unsigned char c = static_cast<unsigned char>(*p);
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/** Turn a dump reason into a filename-safe token. */
std::string
fileToken(const std::string &reason)
{
    std::string out;
    for (const char c : reason)
        out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
    if (out.empty())
        out = "dump";
    return out;
}

} // namespace

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    static const bool registered = []() {
        MetricsRegistry::global().registerCollector(
            "flight",
            [](MetricSink &sink) { FlightRecorder::instance().collect(sink); });
        return true;
    }();
    (void)registered;
    return recorder;
}

void
FlightRecorder::setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
    Tracer::instance().setFlightCapture(on);
}

bool
FlightRecorder::enabled() const
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
FlightRecorder::setDumpDir(std::string dir)
{
    std::lock_guard<std::mutex> lock(dump_mutex_);
    dump_dir_ = std::move(dir);
}

void
FlightRecorder::setMaxDumps(std::uint64_t n)
{
    std::lock_guard<std::mutex> lock(dump_mutex_);
    max_dumps_ = n;
}

FlightRecorder::Ring &
FlightRecorder::localRing()
{
    // Rings are owned by the registry for the process lifetime, so the
    // thread_local pointer stays valid after its thread exits and the
    // joined thread's recent history still appears in snapshots.
    thread_local Ring *ring = nullptr;
    if (!ring) {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        rings_.push_back(
            std::make_unique<Ring>(static_cast<std::uint32_t>(rings_.size())));
        ring = rings_.back().get();
    }
    return *ring;
}

void
FlightRecorder::append(const Entry &entry)
{
    Ring &ring = localRing();
    std::lock_guard<std::mutex> lock(ring.mutex);
    ring.slots[ring.head % kRingCapacity] = entry;
    ++ring.head;
}

void
FlightRecorder::recordEvent(const TraceEvent &ev)
{
    Entry entry;
    entry.category = ev.category;
    entry.name = ev.name;
    entry.t0Ns = ev.t0Ns;
    entry.t1Ns = ev.t1Ns;
    entry.requestId = ev.requestId;
    entry.spanId = ev.spanId;
    entry.parentId = ev.parentId;
    entry.arg = ev.arg;
    entry.hasArg = ev.hasArg;
    append(entry);
}

void
FlightRecorder::recordLog(const char *level, const char *text)
{
    if (!enabled())
        return;
    Entry entry;
    entry.isLog = true;
    entry.t0Ns = Tracer::instance().nowNs();
    entry.t1Ns = entry.t0Ns;
    std::snprintf(entry.level, sizeof(entry.level), "%s", level);
    std::snprintf(entry.text, sizeof(entry.text), "%s", text);
    append(entry);
}

void
FlightRecorder::snapshotJson(std::ostream &os, const std::string &reason) const
{
    // Copy out the valid slots of every ring first (each under its own
    // mutex, briefly), then serialize ordered by start time.
    struct Tagged
    {
        Entry entry;
        std::uint32_t tid;
    };
    std::vector<Tagged> entries;
    {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        for (const auto &ring : rings_) {
            std::lock_guard<std::mutex> ring_lock(ring->mutex);
            const std::uint64_t n = std::min<std::uint64_t>(
                ring->head, static_cast<std::uint64_t>(kRingCapacity));
            const std::uint64_t begin = ring->head - n;
            for (std::uint64_t i = 0; i < n; ++i)
                entries.push_back(
                    {ring->slots[(begin + i) % kRingCapacity], ring->tid});
        }
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Tagged &a, const Tagged &b) {
                         return a.entry.t0Ns < b.entry.t0Ns;
                     });

    os << "{\"reason\":\"" << jsonEscape(reason.c_str()) << "\"";
    char line[384];
    std::snprintf(line, sizeof(line),
                  ",\"captured_ns\":%" PRIu64 ",\"recorded\":%" PRIu64,
                  Tracer::instance().nowNs(), recorded());
    os << line << ",\"events\":[";
    bool first = true;
    for (const Tagged &t : entries) {
        if (t.entry.isLog)
            continue;
        std::snprintf(line, sizeof(line),
                      "%s{\"tid\":%u,\"cat\":\"%s\",\"name\":\"%s\","
                      "\"t0\":%" PRIu64 ",\"t1\":%" PRIu64 ",\"req\":%" PRIu64
                      ",\"span\":%" PRIu64 ",\"parent\":%" PRIu64,
                      first ? "" : ",", t.tid, t.entry.category, t.entry.name,
                      t.entry.t0Ns, t.entry.t1Ns, t.entry.requestId,
                      t.entry.spanId, t.entry.parentId);
        os << line;
        if (t.entry.hasArg) {
            std::snprintf(line, sizeof(line), ",\"value\":%" PRIu64,
                          t.entry.arg);
            os << line;
        }
        os << '}';
        first = false;
    }
    os << "],\"logs\":[";
    first = true;
    for (const Tagged &t : entries) {
        if (!t.entry.isLog)
            continue;
        std::snprintf(line, sizeof(line),
                      "%s{\"tid\":%u,\"t\":%" PRIu64 ",\"level\":\"%s\"",
                      first ? "" : ",", t.tid, t.entry.t0Ns, t.entry.level);
        os << line << ",\"msg\":\"" << jsonEscape(t.entry.text) << "\"}";
        first = false;
    }
    os << "]}\n";
}

void
FlightRecorder::triggerDump(const std::string &reason)
{
    {
        std::lock_guard<std::mutex> lock(dump_mutex_);
        if (dumps_ >= max_dumps_) {
            ++suppressed_;
            return;
        }
        ++dumps_;
    }
    std::ostringstream os;
    snapshotJson(os, reason);
    std::string path;
    {
        std::lock_guard<std::mutex> lock(dump_mutex_);
        last_snapshot_ = os.str();
        last_reason_ = reason;
        if (!dump_dir_.empty())
            path = dump_dir_ + "/flight_" + std::to_string(dumps_) + "_" +
                   fileToken(reason) + ".json";
    }
    if (!path.empty()) {
        std::ofstream out(path);
        if (out)
            out << os.str();
        else
            std::fprintf(stderr, "warn: flight recorder could not write %s\n",
                         path.c_str());
    }
}

std::uint64_t
FlightRecorder::dumps() const
{
    std::lock_guard<std::mutex> lock(dump_mutex_);
    return dumps_;
}

std::uint64_t
FlightRecorder::suppressedDumps() const
{
    std::lock_guard<std::mutex> lock(dump_mutex_);
    return suppressed_;
}

std::string
FlightRecorder::lastSnapshot() const
{
    std::lock_guard<std::mutex> lock(dump_mutex_);
    return last_snapshot_;
}

std::string
FlightRecorder::lastReason() const
{
    std::lock_guard<std::mutex> lock(dump_mutex_);
    return last_reason_;
}

std::uint64_t
FlightRecorder::recorded() const
{
    std::lock_guard<std::mutex> lock(registry_mutex_);
    std::uint64_t n = 0;
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> ring_lock(ring->mutex);
        n += ring->head;
    }
    return n;
}

void
FlightRecorder::collect(MetricSink &sink) const
{
    sink.counter("flight.recorded", recorded());
    std::lock_guard<std::mutex> lock(dump_mutex_);
    sink.counter("flight.dumps", dumps_);
    sink.counter("flight.suppressed_dumps", suppressed_);
    sink.gauge("flight.enabled",
               g_enabled.load(std::memory_order_relaxed) ? 1.0 : 0.0);
}

void
FlightRecorder::reset()
{
    {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        for (auto &ring : rings_) {
            std::lock_guard<std::mutex> ring_lock(ring->mutex);
            ring->head = 0;
        }
    }
    std::lock_guard<std::mutex> lock(dump_mutex_);
    dumps_ = 0;
    suppressed_ = 0;
    last_snapshot_.clear();
    last_reason_.clear();
}

} // namespace fusion3d::obs
