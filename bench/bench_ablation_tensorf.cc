/**
 * @file
 * Regenerates the Sec. VI-C "other NeRF pipelines" ablation:
 *  1) the Fusion-3D sampling + post-processing modules dropped into a
 *     TensoRF accelerator (paper: 39% power, 11% area reduction vs
 *     RT-NeRF, feature-interpolation module retained);
 *  2) the MoE scheme applied to TensoRF: four small models vs one
 *     large model (paper: PSNR difference of only -0.5 dB);
 *  3) a functional check that the TensoRF pipeline itself trains.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "chip/hw_cost.h"
#include "nerf/moe.h"
#include "nerf/tensorf.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"

using namespace fusion3d;

namespace
{

nerf::TensorfPipelineConfig
tensorfConfig(int rank_scale)
{
    nerf::TensorfPipelineConfig tc;
    tc.model.densityRank = 8 * rank_scale;
    tc.model.appearanceRank = 12 * rank_scale;
    tc.model.lineResolution = 128;
    tc.sampler.maxSamplesPerRay = 32;
    return tc;
}

double
train(nerf::RadianceField &field, const nerf::Dataset &data, int iterations)
{
    nerf::TrainerConfig cfg;
    cfg.iterations = iterations;
    cfg.raysPerBatch = 128;
    cfg.occupancyWarmup = 96;
    cfg.occupancyUpdateEvery = 48;
    nerf::Trainer trainer(field, data, cfg);
    return trainer.run().finalPsnr;
}

} // namespace

int
main(int argc, char **argv)
{
    const int iterations = argc > 1 ? std::atoi(argv[1]) : 300;

    bench::banner("Sec. VI-C: Fusion-3D modules adapted to TensoRF (vs RT-NeRF)");
    const chip::TensorfAdaptation adapt = chip::tensorfAdaptation();
    std::printf("RT-NeRF-style baseline:  %10.0f gate units, %10.0f energy units\n",
                adapt.baseline.areaUnits, adapt.baseline.energyUnits);
    std::printf("With Fusion-3D modules:  %10.0f gate units, %10.0f energy units\n",
                adapt.adapted.areaUnits, adapt.adapted.energyUnits);
    std::printf("Area reduction:  %5.1f%%  (paper: 11%%)\n",
                adapt.areaSaving() * 100.0);
    std::printf("Power reduction: %5.1f%%  (paper: 39%%)\n\n",
                adapt.powerSaving() * 100.0);

    bench::banner("Sec. VI-C: MoE applied to TensoRF (4 small vs 1 large model)");
    const auto scene = scenes::makeSyntheticScene("lego");
    scenes::DatasetConfig dc = scenes::syntheticRig(32);
    dc.reference.steps = 128;
    const nerf::Dataset data = scenes::makeDataset(*scene, dc);

    // Single large model: 4x the rank budget of each small expert.
    nerf::TensorfPipeline large(tensorfConfig(4));
    std::printf("training single large TensoRF (%zu params) ...\n",
                large.paramCount());
    const double large_psnr = train(large, data, iterations);

    nerf::MoeConfigT<nerf::TensorfPipeline> mc;
    mc.numExperts = 4;
    mc.expert = tensorfConfig(1);
    nerf::MoeField<nerf::TensorfPipeline> moe(mc);
    std::printf("training 4-expert TensoRF MoE (%zu params) ...\n", moe.paramCount());
    const double moe_psnr = train(moe, data, iterations);

    std::printf("\nSingle large TensoRF: %6.2f dB\n", large_psnr);
    std::printf("4-expert TensoRF MoE: %6.2f dB  (delta %+.2f dB)\n", moe_psnr,
                moe_psnr - large_psnr);
    std::printf("Paper: four smaller models achieve a PSNR difference of only "
                "-0.5 dB vs the single larger model.\n");
    return 0;
}
