/** @file Tests of the chip performance/bandwidth models, the top-level
 *  Chip evaluator, the multi-chip system and the baseline table. */

#include <gtest/gtest.h>

#include "baselines/platforms.h"
#include "chip/chip.h"
#include "chip/perf_model.h"
#include "multichip/io_module.h"
#include "multichip/system.h"
#include "nerf/moe.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

namespace fusion3d
{
namespace
{

chip::WorkloadProfile
sampleWorkload()
{
    chip::WorkloadProfile wl;
    wl.rays = 640 * 480;
    wl.candidates = wl.rays * 40;
    wl.validPoints = wl.rays * 16;
    wl.compositedPoints = wl.rays * 10;
    wl.levels = 8;
    wl.macsPerPoint = 2400;
    wl.avgGroupCycles = 1.0;
    return wl;
}

chip::SamplingRunStats
sampleStage1(const chip::WorkloadProfile &wl)
{
    chip::SamplingRunStats s;
    s.raysProcessed = wl.rays;
    s.candidatesMarched = wl.candidates;
    s.validPoints = wl.validPoints;
    // 16 cores at ~80% utilization over the candidates.
    s.totalCycles = wl.candidates / 13;
    s.busyCoreCycles = wl.candidates;
    return s;
}

TEST(PerfModel, TrainingIsRoughlyThreeTimesInference)
{
    const chip::ChipConfig cfg = chip::ChipConfig::scaledUp();
    const chip::TechModel tech(cfg);
    const chip::PerfModel pm(cfg, tech);
    const chip::WorkloadProfile wl = sampleWorkload();
    const chip::SamplingRunStats s1 = sampleStage1(wl);

    const chip::ChipRunResult inf = pm.inference(wl, s1);
    const chip::ChipRunResult tr = pm.training(wl, s1);
    const double ratio = inf.throughputPointsPerSec / tr.throughputPointsPerSec;
    // Table III: 591 / 199 = 2.97.
    EXPECT_NEAR(ratio, 3.0, 0.35);
}

TEST(PerfModel, ThroughputInPaperRegime)
{
    const chip::ChipConfig cfg = chip::ChipConfig::scaledUp();
    const chip::TechModel tech(cfg);
    const chip::PerfModel pm(cfg, tech);
    const chip::WorkloadProfile wl = sampleWorkload();
    const chip::ChipRunResult inf = pm.inference(wl, sampleStage1(wl));

    // Paper: 591 M samples/s inference on the scaled-up chip. The
    // simulated design must land in the same regime (hundreds of M/s).
    EXPECT_GT(inf.throughputPointsPerSec, 300e6);
    EXPECT_LT(inf.throughputPointsPerSec, 1200e6);

    // Energy/point: paper reports 2.5 nJ (inference).
    EXPECT_GT(inf.energyPerPointNj, 1.0);
    EXPECT_LT(inf.energyPerPointNj, 6.0);
}

TEST(PerfModel, StagesAreBalancedByDesign)
{
    // Sec. VI-C: cores are provisioned so stage speeds match.
    const chip::ChipConfig cfg = chip::ChipConfig::scaledUp();
    const chip::TechModel tech(cfg);
    const chip::PerfModel pm(cfg, tech);
    const chip::WorkloadProfile wl = sampleWorkload();
    const chip::ChipRunResult inf = pm.inference(wl, sampleStage1(wl));
    const double s1 = static_cast<double>(inf.stage1Cycles);
    const double s2 = static_cast<double>(inf.stage2Cycles);
    const double s3 = static_cast<double>(inf.stage3Cycles);
    EXPECT_LT(std::max({s1, s2, s3}) / std::min({s1, s2, s3}), 6.0);
}

TEST(BandwidthModel, EndToEndFitsUsbBudget)
{
    chip::BandwidthModel bm;
    // Our configuration: all tables on-chip -> only dataset streaming.
    const double ours = bm.requiredBandwidthGBs(chip::CoverageBoundary::EndToEnd,
                                                640.0 * 1024.0);
    EXPECT_GT(ours, 0.3);
    EXPECT_LE(ours, 0.625); // the 5 Gbps USB budget (Table I)
}

TEST(BandwidthModel, PartialCoverageNeedsTwoOrdersMore)
{
    chip::BandwidthModel bm;
    const double table = (65536.0 + 262144.0) * 2.0 * 2.0; // 2^16+2^18 model
    const double ours = bm.requiredBandwidthGBs(chip::CoverageBoundary::EndToEnd, table);
    const double split = bm.requiredBandwidthGBs(chip::CoverageBoundary::Stage23, table);
    const double s2only =
        bm.requiredBandwidthGBs(chip::CoverageBoundary::Stage2Only, table);
    EXPECT_GT(split, 10.0 * ours / 3.0);
    EXPECT_GT(s2only, split);

    // Fig. 13(b): ~76% (44 GB/s) of the SOTA trainer's bandwidth demand
    // is removed by the end-to-end pipeline alone.
    const double saving = (split - ours) / 59.7;
    EXPECT_GT(saving, 0.55);
    EXPECT_LT(saving, 0.95);
}

TEST(BandwidthModel, TotalVolumeMatchesFig3)
{
    chip::BandwidthModel bm;
    // Fig. 3: ~155 GB of intermediate data, ~0.7 GB of true I/O.
    EXPECT_GT(bm.totalIntermediateGb(), 120.0);
    EXPECT_LT(bm.totalIntermediateGb(), 200.0);
    EXPECT_NEAR(bm.ioGb(), 0.7, 0.1);
    // Inter-stage band of Fig. 3: ~12.5 GB/s.
    EXPECT_GT(bm.interStageGBs(), 8.0);
    EXPECT_LT(bm.interStageGBs(), 20.0);
}

TEST(BandwidthModel, SpillGrowsWithModelSize)
{
    chip::BandwidthModel bm;
    double prev = -1.0;
    for (double size_kb : {256.0, 640.0, 1024.0, 2048.0, 8192.0}) {
        const double s = bm.spillGBs(size_kb * 1024.0);
        EXPECT_GE(s, prev);
        prev = s;
    }
    EXPECT_EQ(bm.spillGBs(100.0 * 1024.0), 0.0); // fits on-chip
}

TEST(Chip, InferenceEvaluationOnRealPipeline)
{
    nerf::PipelineConfig pc;
    pc.model.grid.levels = 8;
    pc.model.grid.log2TableSize = 13;
    pc.sampler.maxSamplesPerRay = 32;
    nerf::NerfPipeline pipeline(pc);

    const nerf::Camera cam =
        nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 30.0f, 20.0f, 45.0f, 320, 240);
    const chip::Chip chip_model(chip::ChipConfig::scaledUp());
    const chip::InferenceReport rep = chip_model.evaluateInference(pipeline, cam, 512);

    EXPECT_EQ(rep.workload.rays, 320u * 240u);
    EXPECT_GT(rep.workload.validPoints, 0u);
    EXPECT_GT(rep.fps, 0.0);
    EXPECT_GT(rep.perf.throughputPointsPerSec, 0.0);
    // Tiled mapping: conflict-free Stage II on real traces.
    EXPECT_EQ(rep.stage2.conflicts, 0u);
    EXPECT_DOUBLE_EQ(rep.stage2.meanGroupLatency, 1.0);
}

TEST(Chip, BaselinePolicyIsSlower)
{
    nerf::PipelineConfig pc;
    pc.model.grid.levels = 6;
    pc.model.grid.log2TableSize = 12;
    nerf::NerfPipeline pipeline(pc);
    const nerf::Camera cam =
        nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 10.0f, 25.0f, 45.0f, 160, 120);

    const chip::Chip tiled(chip::ChipConfig::scaledUp(), chip::BankPolicy::TwoLevelTiling);
    const chip::Chip modulo(chip::ChipConfig::scaledUp(),
                            chip::BankPolicy::ModuloInterleave);
    const auto rt = tiled.evaluateInference(pipeline, cam, 256);
    const auto rm = modulo.evaluateInference(pipeline, cam, 256);
    EXPECT_GT(rm.perf.stage2Cycles, rt.perf.stage2Cycles);
    EXPECT_GT(rm.stage2.meanGroupLatency, rt.stage2.meanGroupLatency);
}

TEST(MultiChip, SystemBudgetsMatchTableIV)
{
    multichip::SystemConfig sc;
    const multichip::MultiChipSystem sys(sc);
    // Table IV: 35 mm^2, ~4,500 KB SRAM, 6.0 W.
    EXPECT_NEAR(sys.totalAreaMm2(), 35.0, 1.0);
    EXPECT_NEAR(sys.totalSramKb(), 4500.0, 120.0);
    EXPECT_NEAR(sys.totalPowerW(), 6.0, 0.15);
}

TEST(MultiChip, MoeCommunicationSavingMatchesFig12a)
{
    multichip::SystemConfig sc;
    const multichip::MultiChipSystem sys(sc);

    nerf::MoeConfig mc;
    mc.numExperts = 4;
    mc.expert.model.grid.levels = 6;
    mc.expert.model.grid.log2TableSize = 12;
    mc.expert.sampler.maxSamplesPerRay = 32;
    nerf::MoeNerf moe(mc);

    const nerf::Camera cam =
        nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.3f, 45.0f, 20.0f, 50.0f, 160, 120);
    const auto result = sys.evaluateInference(moe, cam, 256);

    ASSERT_EQ(result.chips.size(), 4u);
    EXPECT_GT(result.totalPoints, 0u);
    EXPECT_GT(result.moeCommBytes, 0u);
    EXPECT_GT(result.layerSplitCommBytes, result.moeCommBytes);
    // Fig. 12(a): ~94% communication saving.
    EXPECT_GT(result.commSavingFraction(), 0.85);
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_GE(result.imbalance, 1.0);
}

TEST(MultiChip, TrainingRunProducesBalancedChips)
{
    multichip::SystemConfig sc;
    const multichip::MultiChipSystem sys(sc);

    nerf::MoeConfig mc;
    mc.numExperts = 4;
    mc.expert.model.grid.levels = 6;
    mc.expert.model.grid.log2TableSize = 12;
    nerf::MoeNerf moe(mc);

    const auto scene = scenes::makeNerf360Scene("room");
    scenes::DatasetConfig dc = scenes::nerf360Rig(24);
    dc.trainViews = 4;
    dc.testViews = 1;
    dc.reference.steps = 64;
    const nerf::Dataset ds = scenes::makeDataset(*scene, dc);

    const auto result = sys.evaluateTraining(moe, ds, 512);
    EXPECT_GT(result.totalPoints, 0u);
    // Freshly initialized gates are region-masked wedges: workloads
    // should be within a small factor of each other.
    EXPECT_LT(result.imbalance, 3.0);
    EXPECT_GT(result.commSavingFraction(), 0.8);
}

TEST(IoModule, OverheadsMatchPaper)
{
    const multichip::IoModule io;
    const chip::ChipConfig c = chip::ChipConfig::scaledUp();
    EXPECT_NEAR(io.areaMm2(c, 4), 4 * 8.7 * 0.005, 1e-9);
    EXPECT_NEAR(io.sramKb(c, 4), 4.0 * c.totalSramKb() * 0.023, 1e-6);
}

TEST(ChipletIoModel, AreaGrowsWithModelSize)
{
    const multichip::ChipletIoModel model;
    const double small = model.areaMm2(1.0 * 1024 * 1024);
    const double large = model.areaMm2(64.0 * 1024 * 1024);
    EXPECT_NEAR(small, model.baseLogicMm2, 1e-6); // fits on compute chips
    EXPECT_GT(large, 20.0 * small);               // Fig. 14(b) blow-up
}

TEST(Baselines, TableLookupsAndScaling)
{
    const auto &edge = baselines::edgeBaselines();
    EXPECT_EQ(edge.size(), 6u);
    const auto &i3d = baselines::platform("Instant-3D");
    EXPECT_TRUE(i3d.instantTraining);
    ASSERT_TRUE(i3d.trainingMpts.has_value());
    EXPECT_DOUBLE_EQ(*i3d.trainingSeconds(32e6), 1.0);
    EXPECT_FALSE(i3d.inferenceSeconds(1e6).has_value()); // N/R in Table III

    const auto &gpu = baselines::platform("Nvidia 2080Ti");
    ASSERT_TRUE(gpu.typicalPowerW.has_value());
    EXPECT_DOUBLE_EQ(*gpu.typicalPowerW, 250.0);

    EXPECT_EQ(baselines::bandwidthTableRows().size(), 7u);
    EXPECT_DEATH(baselines::platform("nonexistent"), "unknown platform");
}

} // namespace
} // namespace fusion3d
