#include "baselines/platforms.h"

#include "common/logging.h"

namespace fusion3d::baselines
{

namespace
{

std::vector<PlatformSpec>
buildEdge()
{
    std::vector<PlatformSpec> v;

    PlatformSpec nano;
    nano.name = "Jetson Nano";
    nano.venue = "Nvidia";
    nano.processNm = 20;
    nano.dieAreaMm2 = 118.0;
    nano.clockMHz = 900.0;
    nano.sramKb = 2500.0;
    nano.nerfAlgorithm = "Hash Grid";
    nano.inferenceMpts = 2.5;
    nano.trainingMpts = 0.5;
    nano.inferenceEnergyNj = 192.0;
    nano.trainingEnergyNj = 943.0;
    nano.offChipGBs = 25.6;
    nano.offChipType = "LPDDR4";
    v.push_back(nano);

    PlatformSpec xnx;
    xnx.name = "Jetson XNX";
    xnx.venue = "Nvidia";
    xnx.processNm = 12;
    xnx.dieAreaMm2 = 350.0;
    xnx.clockMHz = 1100.0;
    xnx.sramKb = 11000.0;
    xnx.nerfAlgorithm = "Hash Grid";
    xnx.inferenceMpts = 12.5;
    xnx.trainingMpts = 2.6;
    xnx.inferenceEnergyNj = 486.0;
    xnx.trainingEnergyNj = 2357.0;
    xnx.offChipGBs = 59.7;
    xnx.offChipType = "LPDDR4x";
    v.push_back(xnx);

    PlatformSpec rtnerf;
    rtnerf.name = "RT-NeRF (Edge)";
    rtnerf.venue = "ICCAD'22";
    rtnerf.processNm = 28;
    rtnerf.dieAreaMm2 = 18.85;
    rtnerf.clockMHz = 1000.0;
    rtnerf.sramKb = 3500.0;
    rtnerf.coreVoltage = 1.0;
    rtnerf.nerfAlgorithm = "Dense Grid";
    rtnerf.realTimeInference = true;
    rtnerf.inferenceMpts = 288.0;
    rtnerf.inferenceEnergyNj = 27.0;
    rtnerf.offChipGBs = 17.0;
    rtnerf.offChipType = "LPDDR4-1600";
    v.push_back(rtnerf);

    PlatformSpec instant3d;
    instant3d.name = "Instant-3D";
    instant3d.venue = "ISCA'23";
    instant3d.processNm = 28;
    instant3d.dieAreaMm2 = 6.8;
    instant3d.clockMHz = 800.0;
    instant3d.sramKb = 1536.0;
    instant3d.coreVoltage = 1.0;
    instant3d.instantTraining = true;
    instant3d.realTimeInference = true;
    instant3d.trainingMpts = 32.0;
    instant3d.trainingEnergyNj = 59.0;
    instant3d.offChipGBs = 59.7;
    instant3d.offChipType = "LPDDR4-1866";
    v.push_back(instant3d);

    PlatformSpec neurex;
    neurex.name = "NeuRex (Edge)";
    neurex.venue = "ISCA'23";
    neurex.processNm = 28;
    neurex.dieAreaMm2 = 3.14;
    neurex.clockMHz = 1000.0;
    neurex.sramKb = 884.0;
    neurex.realTimeInference = true;
    neurex.inferenceMpts = 112.0;
    neurex.inferenceEnergyNj = 41.0;
    neurex.offChipGBs = 25.6;
    neurex.offChipType = "LPDDR4-3200";
    v.push_back(neurex);

    PlatformSpec metavrain;
    metavrain.name = "MetaVRain";
    metavrain.venue = "ISSCC'23";
    metavrain.processNm = 28;
    metavrain.dieAreaMm2 = 20.25;
    metavrain.clockMHz = 250.0;
    metavrain.sramKb = 2050.0;
    metavrain.coreVoltage = 0.95;
    metavrain.nerfAlgorithm = "MLP";
    metavrain.siliconPrototype = true;
    metavrain.realTimeInference = true; // with image warping
    metavrain.inferenceMpts = 13.8;
    metavrain.inferenceEnergyNj = 65.0;
    v.push_back(metavrain);

    return v;
}

std::vector<PlatformSpec>
buildCloud()
{
    std::vector<PlatformSpec> v;

    PlatformSpec gpu;
    gpu.name = "Nvidia 2080Ti";
    gpu.venue = "Nvidia";
    gpu.processNm = 12;
    gpu.dieAreaMm2 = 754.0;
    gpu.clockMHz = 1350.0;
    gpu.sramKb = 27394.0;
    gpu.typicalPowerW = 250.0;
    // Throughput/W rows of Table IV: 0.4 / 0.1 M samples/s/W.
    gpu.inferenceMpts = 0.4 * 250.0;
    gpu.trainingMpts = 0.1 * 250.0;
    gpu.offChipGBs = 616.0;
    gpu.offChipType = "GDDR6";
    v.push_back(gpu);

    PlatformSpec rtcloud;
    rtcloud.name = "RT-NeRF-Cloud";
    rtcloud.venue = "ICCAD'22";
    rtcloud.processNm = 28;
    rtcloud.dieAreaMm2 = 565.0;
    rtcloud.clockMHz = 1000.0;
    rtcloud.sramKb = 105000.0;
    rtcloud.typicalPowerW = 240.0;
    rtcloud.inferenceMpts = 34.0 * 240.0;
    rtcloud.offChipGBs = 510.0;
    rtcloud.offChipType = "HBM2";
    v.push_back(rtcloud);

    PlatformSpec neurexs;
    neurexs.name = "NeuRex-Server";
    neurexs.venue = "ISCA'23";
    neurexs.processNm = 28;
    neurexs.dieAreaMm2 = 21.37;
    neurexs.clockMHz = 1000.0;
    neurexs.sramKb = 4644.0;
    neurexs.typicalPowerW = 6.1;
    neurexs.inferenceMpts = 50.0 * 6.1;
    neurexs.offChipGBs = 512.0;
    neurexs.offChipType = "HBM2";
    v.push_back(neurexs);

    return v;
}

std::vector<PlatformSpec>
buildBandwidthRows()
{
    std::vector<PlatformSpec> v;

    PlatformSpec r;
    r.name = "RT-NeRF (Edge)";
    r.offChipGBs = 17.0;
    r.offChipType = "LPDDR4-1600";
    v.push_back(r);

    r = PlatformSpec{};
    r.name = "Gen-NeRF";
    r.offChipGBs = 17.8;
    r.offChipType = "LPDDR4-2400";
    v.push_back(r);

    r = PlatformSpec{};
    r.name = "NeuRex (Edge)";
    r.offChipGBs = 25.6;
    r.offChipType = "LPDDR4-3200";
    v.push_back(r);

    r = PlatformSpec{};
    r.name = "Instant-3D";
    r.instantTraining = true;
    r.offChipGBs = 59.7;
    r.offChipType = "LPDDR4-1866";
    v.push_back(r);

    r = PlatformSpec{};
    r.name = "NGPC";
    r.offChipGBs = 231.0;
    r.offChipType = "GDDR6X";
    v.push_back(r);

    r = PlatformSpec{};
    r.name = "RT-NeRF (Server)";
    r.offChipGBs = 510.0;
    r.offChipType = "HBM2";
    v.push_back(r);

    r = PlatformSpec{};
    r.name = "NeuRex (Server)";
    r.offChipGBs = 256.0;
    r.offChipType = "HBM2";
    v.push_back(r);

    return v;
}

} // namespace

const std::vector<PlatformSpec> &
edgeBaselines()
{
    static const std::vector<PlatformSpec> v = buildEdge();
    return v;
}

const std::vector<PlatformSpec> &
cloudBaselines()
{
    static const std::vector<PlatformSpec> v = buildCloud();
    return v;
}

const std::vector<PlatformSpec> &
bandwidthTableRows()
{
    static const std::vector<PlatformSpec> v = buildBandwidthRows();
    return v;
}

const PlatformSpec &
platform(const std::string &name)
{
    for (const auto &p : edgeBaselines()) {
        if (p.name == name)
            return p;
    }
    for (const auto &p : cloudBaselines()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown platform '%s'", name.c_str());
}

} // namespace fusion3d::baselines
