/**
 * @file
 * Quickstart: reconstruct a procedural scene with the Instant-NGP-style
 * pipeline and render a novel view — the end-to-end workload one
 * Fusion-3D chip executes. Prints the PSNR trajectory and writes the
 * reconstruction next to the ground truth as PPM images.
 *
 * Usage: quickstart [scene] [iterations] [image_size] [--threads N]
 *
 * With --threads N the trainer shards each batch across a pool of N
 * threads (N-1 workers plus the caller); results are bit-identical to
 * the serial run at any N (DESIGN.md §8).
 */

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "nerf/pipeline.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

using namespace fusion3d;

int
main(int argc, char **argv)
{
    int threads = 1;
    std::vector<const char *> pos;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else
            pos.push_back(argv[i]);
    }
    if (threads < 1)
        fatal("--threads wants a positive thread count");

    const std::string scene_name = pos.size() > 0 ? pos[0] : "lego";
    const int iterations = pos.size() > 1 ? std::atoi(pos[1]) : 1000;
    const int image_size = pos.size() > 2 ? std::atoi(pos[2]) : 48;

    inform("building scene '%s'", scene_name.c_str());
    const auto scene = scenes::makeSyntheticScene(scene_name);
    inform("scene occupancy fill: %.1f%%", scene->occupiedFraction() * 100.0);

    inform("rendering ground-truth dataset (%dx%d)...", image_size, image_size);
    const nerf::Dataset dataset = scenes::makeDataset(*scene,
                                                      scenes::syntheticRig(image_size));
    inform("dataset: %zu train views, %zu test views", dataset.train.size(),
           dataset.test.size());

    nerf::PipelineConfig pc;
    pc.model.grid.levels = 8;
    pc.model.grid.log2TableSize = 14;
    pc.model.grid.baseResolution = 16;
    pc.model.grid.maxResolution = 128;
    nerf::NerfPipeline pipeline(pc);
    inform("model parameters: %zu", pipeline.paramCount());

    // threads threads total: a pool of threads-1 workers plus the
    // caller, which participates in parallelFor (--threads 1 is a
    // zero-worker pool running inline, so every N shares the sharded
    // numeric path and produces the same weights).
    ThreadPool pool(threads - 1);

    nerf::TrainerConfig tc;
    tc.iterations = iterations;
    tc.raysPerBatch = 256;
    tc.evalEvery = std::max(iterations / 8, 1);
    tc.pool = &pool;
    nerf::Trainer trainer(pipeline, dataset, tc);

    inform("training for %d iterations on %d thread%s...", iterations, threads,
           threads == 1 ? "" : "s");
    const nerf::TrainResult result = trainer.run();
    for (const auto &[iter, p] : result.history)
        inform("  iter %5d  PSNR %6.2f dB", iter, p);
    inform("final PSNR: %.2f dB  (%llu rays, %llu samples, %.1f samples/ray)",
           result.finalPsnr, static_cast<unsigned long long>(result.totalRays),
           static_cast<unsigned long long>(result.totalSamples),
           result.avgSamplesPerRay());

    const Image rendered = trainer.renderView(dataset.test[0].camera);
    rendered.writePpm("quickstart_render.ppm");
    dataset.test[0].image.writePpm("quickstart_truth.ppm");
    inform("wrote quickstart_render.ppm / quickstart_truth.ppm");
    return 0;
}
