/** @file Tests of Stage-I sampling: partitioning, occupancy filtering,
 *  and the workload traces the hardware model replays. */

#include <gtest/gtest.h>

#include "nerf/occupancy_grid.h"
#include "nerf/sampler.h"

namespace fusion3d::nerf
{
namespace
{

Ray
centerRay()
{
    return Ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
}

TEST(Sampler, MissingRayProducesNothing)
{
    RaySampler sampler;
    Pcg32 rng(1);
    std::vector<RaySample> out;
    const Ray miss({3.0f, 3.0f, -1.0f}, {0.0f, 0.0f, 1.0f});
    EXPECT_EQ(sampler.sample(miss, nullptr, rng, out), 0);
    EXPECT_TRUE(out.empty());
}

TEST(Sampler, UnoccludedRayFillsCube)
{
    SamplerConfig cfg;
    cfg.maxSamplesPerRay = 64;
    cfg.jitter = false;
    RaySampler sampler(cfg);
    Pcg32 rng(2);
    std::vector<RaySample> out;
    const int n = sampler.sample(centerRay(), nullptr, rng, out);
    // Path length through the cube is 1.0; dt = sqrt(3)/64 -> ~36 pts.
    EXPECT_NEAR(n, 37, 3);
    for (const RaySample &s : out) {
        EXPECT_GE(s.pos.z, -1e-4f);
        EXPECT_LE(s.pos.z, 1.0f + 1e-4f);
        EXPECT_NEAR(s.pos.x, 0.5f, 1e-5f);
    }
}

TEST(Sampler, SamplesAreSortedByT)
{
    RaySampler sampler;
    Pcg32 rng(3);
    std::vector<RaySample> out;
    sampler.sample(Ray({-0.2f, 0.3f, -0.4f}, normalize(Vec3f{0.7f, 0.2f, 0.9f})),
                   nullptr, rng, out);
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_GT(out[i].t, out[i - 1].t);
}

TEST(Sampler, PartitioningDoesNotChangeSamples)
{
    SamplerConfig with;
    with.jitter = false;
    with.partition = true;
    SamplerConfig without = with;
    without.partition = false;

    Pcg32 rng_a(4), rng_b(4);
    std::vector<RaySample> a, b;
    const Ray ray({-0.3f, 0.2f, -0.5f}, normalize(Vec3f{0.8f, 0.3f, 0.9f}));
    RaySampler(with).sample(ray, nullptr, rng_a, a);
    RaySampler(without).sample(ray, nullptr, rng_b, b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i].t, b[i].t, 1e-4f);
}

TEST(Sampler, OccupancyFilterDropsEmptySpace)
{
    OccupancyGrid grid(16);
    grid.clearAll();
    RaySampler sampler;
    Pcg32 rng(5);
    std::vector<RaySample> out;
    EXPECT_EQ(sampler.sample(centerRay(), &grid, rng, out), 0);

    grid.markAll();
    EXPECT_GT(sampler.sample(centerRay(), &grid, rng, out), 10);
}

TEST(Sampler, OccupancyFilterKeepsOccupiedRegionOnly)
{
    OccupancyGrid grid(16);
    grid.clearAll();
    // Occupy only the far half (z > 0.5) via a region mask trick.
    grid.markAll();
    grid.maskRegion([](const Vec3f &p) { return p.z > 0.5f; });

    SamplerConfig cfg;
    cfg.jitter = false;
    RaySampler sampler(cfg);
    Pcg32 rng(6);
    std::vector<RaySample> out;
    sampler.sample(centerRay(), &grid, rng, out);
    ASSERT_FALSE(out.empty());
    for (const RaySample &s : out)
        EXPECT_GT(s.pos.z, 0.5f - 0.1f);
}

TEST(Sampler, WorkloadCountsConsistent)
{
    OccupancyGrid grid(8);
    grid.markAll();
    grid.maskRegion([](const Vec3f &p) { return p.x > 0.25f; });

    RaySampler sampler;
    Pcg32 rng(7);
    std::vector<RaySample> out;
    RayWorkload wl;
    const Ray ray({-0.5f, 0.4f, 0.45f}, normalize(Vec3f{1.0f, 0.05f, 0.1f}));
    const int n = sampler.sample(ray, &grid, rng, out, &wl);

    EXPECT_EQ(wl.totalValid, n);
    EXPECT_GE(wl.totalCandidates, wl.totalValid);
    int pair_candidates = 0, pair_valid = 0;
    for (const RayCubePair &p : wl.pairs) {
        EXPECT_GE(p.octant, 0);
        EXPECT_LT(p.octant, 8);
        EXPECT_GE(p.candidates, p.valid);
        pair_candidates += p.candidates;
        pair_valid += p.valid;
    }
    EXPECT_EQ(pair_candidates, wl.totalCandidates);
    EXPECT_EQ(pair_valid, wl.totalValid);
}

TEST(Sampler, DiagonalRayVisitsMultipleOctants)
{
    RaySampler sampler;
    Pcg32 rng(8);
    std::vector<RaySample> out;
    RayWorkload wl;
    const Ray diag({-0.2f, -0.2f, -0.2f}, normalize(Vec3f{1.0f, 1.0f, 1.0f}));
    sampler.sample(diag, nullptr, rng, out, &wl);
    // The main diagonal passes through octants 0 and 7 at least.
    EXPECT_GE(wl.pairs.size(), 2u);
}

TEST(Sampler, NormalizedOpsCheaperThanGeneric)
{
    SamplerConfig fast;
    fast.normalized = true;
    SamplerConfig slow;
    slow.normalized = false;

    Pcg32 rng_a(9), rng_b(9);
    std::vector<RaySample> out;
    RayWorkload wl_fast, wl_slow;
    RaySampler(fast).sample(centerRay(), nullptr, rng_a, out, &wl_fast);
    RaySampler(slow).sample(centerRay(), nullptr, rng_b, out, &wl_slow);

    EXPECT_EQ(wl_fast.intersectionOps.divs, 0u);
    EXPECT_GT(wl_slow.intersectionOps.divs, 0u);
    EXPECT_GT(wl_slow.intersectionOps.weightedCost(),
              5 * wl_fast.intersectionOps.weightedCost());
}

TEST(OccupancyGrid, IndexingRoundTrip)
{
    OccupancyGrid grid(8);
    for (std::size_t i = 0; i < grid.cellCount(); i += 17) {
        const Vec3f c = grid.cellCenter(i);
        EXPECT_EQ(grid.cellIndex(c), i);
    }
}

TEST(OccupancyGrid, UpdateFindsDenseRegion)
{
    OccupancyGrid grid(16);
    Pcg32 rng(10);
    const auto density = [](const Vec3f &p) {
        return length(p - Vec3f(0.5f, 0.5f, 0.5f)) < 0.25f ? 10.0f : 0.0f;
    };
    grid.update(density, rng);
    EXPECT_TRUE(grid.occupiedAt({0.5f, 0.5f, 0.5f}));
    EXPECT_FALSE(grid.occupiedAt({0.05f, 0.05f, 0.05f}));
    // Sphere of radius .25 in unit cube: ~6.5% fill.
    EXPECT_NEAR(grid.occupiedFraction(), 0.065, 0.05);
}

TEST(OccupancyGrid, DecayEventuallyClearsStaleCells)
{
    OccupancyGrid grid(8, 0.5f);
    Pcg32 rng(11);
    grid.update([](const Vec3f &) { return 1.0f; }, rng);
    EXPECT_DOUBLE_EQ(grid.occupiedFraction(), 1.0);
    for (int i = 0; i < 20; ++i)
        grid.update([](const Vec3f &) { return 0.0f; }, rng, 0.5f);
    EXPECT_DOUBLE_EQ(grid.occupiedFraction(), 0.0);
}

TEST(OccupancyGrid, BitfieldBytes)
{
    OccupancyGrid grid(32);
    EXPECT_EQ(grid.bitfieldBytes(), 32u * 32u * 32u / 8u);
}

} // namespace
} // namespace fusion3d::nerf
