/**
 * @file
 * Abstract trainable radiance field. Both the single-model pipeline
 * (one chip) and the Mixture-of-Experts model (multi-chip, Technique T3)
 * implement this interface, so the Trainer and the evaluation harness
 * are agnostic to which one they drive.
 */

#ifndef FUSION3D_NERF_RADIANCE_FIELD_H_
#define FUSION3D_NERF_RADIANCE_FIELD_H_

#include <cstddef>
#include <limits>

#include "common/ray.h"
#include "common/rng.h"
#include "common/vec.h"
#include "nerf/sampler.h"

namespace fusion3d::nerf
{

/** Result of tracing one ray through a radiance field. */
struct RayEval
{
    Vec3f color;
    /** Valid (occupancy-surviving) samples evaluated. */
    int samples = 0;
    /** Candidate samples before occupancy filtering. */
    int candidates = 0;
    /** Samples actually composited before early termination. */
    int composited = 0;
    /** Remaining transmittance behind the last sample. */
    float transmittance = 1.0f;
    /** Ray parameter of the first valid sample (+inf if none). The
     *  multi-chip I/O module orders expert partials by this depth. */
    float firstHitT = std::numeric_limits<float>::infinity();
};

/** A differentiable, trainable radiance field. */
class RadianceField
{
  public:
    virtual ~RadianceField() = default;

    /**
     * Render one ray.
     * @param ray      Ray in normalized model coordinates.
     * @param rng      Source of sampling jitter.
     * @param record   Keep the evaluation tape so backwardLastRay() works.
     * @param workload Optional Stage-I trace sink for the hardware model.
     */
    virtual RayEval traceRay(const Ray &ray, Pcg32 &rng, bool record,
                             RayWorkload *workload = nullptr) = 0;

    /** Backpropagate dL/d(color) of the most recently recorded ray. */
    virtual void backwardLastRay(const Vec3f &dcolor) = 0;

    /** Zero all accumulated parameter gradients. */
    virtual void zeroGrads() = 0;

    /** Apply one optimizer step using the accumulated gradients. */
    virtual void optimizerStep() = 0;

    /** Refresh the occupancy gate(s) from the current density field. */
    virtual void updateOccupancy(Pcg32 &rng) = 0;

    /** Fake-quantize all weights through INT8 (Table II experiment). */
    virtual void quantizeWeights() = 0;

    /** Total trainable parameter count. */
    virtual std::size_t paramCount() const = 0;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_RADIANCE_FIELD_H_
