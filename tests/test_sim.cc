/** @file Tests for the simulation kernel: stats, SRAM, channels, NoC. */

#include <array>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/channel.h"
#include "sim/clocked.h"
#include "sim/noc.h"
#include "sim/sram.h"
#include "sim/stats.h"

namespace fusion3d::sim
{
namespace
{

TEST(Distribution, WelfordMoments)
{
    Distribution d("d");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.variance(), 4.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_DOUBLE_EQ(d.total(), 40.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d("d");
    d.sample(3.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(Histogram, BucketsAndFractions)
{
    Histogram h("h");
    h.sample(1, 3);
    h.sample(2, 1);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.25);
    EXPECT_DOUBLE_EQ(h.fraction(9), 0.0);
}

TEST(StatGroup, DumpFormat)
{
    StatGroup g("grp");
    Counter &c = g.addCounter("hits");
    c.inc(5);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("grp.hits 5"), std::string::npos);
}

TEST(Sram, ConflictFreeGroupTakesOneCycle)
{
    Sram sram({8, 1024, 4}, "s");
    const std::array<std::uint32_t, 8> banks{0, 1, 2, 3, 4, 5, 6, 7};
    const auto r = sram.accessGroup(banks);
    EXPECT_EQ(r.cycles, 1u);
    EXPECT_EQ(r.conflicts, 0u);
}

TEST(Sram, FullConflictTakesEightCycles)
{
    Sram sram({8, 1024, 4}, "s");
    const std::array<std::uint32_t, 8> banks{3, 3, 3, 3, 3, 3, 3, 3};
    const auto r = sram.accessGroup(banks);
    EXPECT_EQ(r.cycles, 8u);
    EXPECT_EQ(r.conflicts, 7u);
}

TEST(Sram, PartialConflict)
{
    Sram sram({8, 1024, 4}, "s");
    const std::array<std::uint32_t, 8> banks{0, 0, 1, 2, 3, 4, 5, 6};
    const auto r = sram.accessGroup(banks);
    EXPECT_EQ(r.cycles, 2u);
    EXPECT_EQ(r.conflicts, 1u);
}

TEST(Sram, StatsAccumulate)
{
    Sram sram({4, 64, 4}, "s");
    const std::array<std::uint32_t, 4> a{0, 1, 2, 3};
    const std::array<std::uint32_t, 4> b{0, 0, 0, 0};
    sram.accessGroup(a);
    sram.accessGroup(b);
    EXPECT_EQ(sram.groupAccesses(), 2u);
    EXPECT_EQ(sram.requests(), 8u);
    EXPECT_EQ(sram.conflictCount(), 3u);
    EXPECT_DOUBLE_EQ(sram.latency().mean(), 2.5);
    EXPECT_EQ(sram.bankLoad()[0], 5u);
    sram.resetStats();
    EXPECT_EQ(sram.groupAccesses(), 0u);
}

TEST(Sram, CapacityBytes)
{
    Sram sram({8, 2048, 4}, "s");
    EXPECT_EQ(sram.capacityBytes(), 8u * 2048u * 4u);
}

TEST(BandwidthChannel, TransferTiming)
{
    BandwidthChannel ch("usb", 0.625e9);
    EXPECT_NEAR(ch.transfer(625'000'000ull), 1.0, 1e-9);
    EXPECT_EQ(ch.totalBytes(), 625'000'000ull);
    EXPECT_EQ(ch.totalTransfers(), 1u);
    EXPECT_NEAR(ch.busySeconds(), 1.0, 1e-9);
}

TEST(BandwidthChannel, LatencyAdds)
{
    BandwidthChannel ch("link", 1e9, 1e-6);
    EXPECT_NEAR(ch.secondsFor(1000), 1e-6 + 1e-6, 1e-12);
}

TEST(Crossbar, SerializesSameBank)
{
    Crossbar xbar(8, 8, "x");
    const std::array<std::uint32_t, 8> conflict{1, 1, 1, 2, 3, 4, 5, 6};
    const std::array<std::uint32_t, 8> clean{0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(xbar.routeGroup(conflict), 3u + xbar.profile().traversalLatency);
    EXPECT_EQ(xbar.routeGroup(clean), 1u + xbar.profile().traversalLatency);
}

TEST(DirectConnect, OneCyclePerGroup)
{
    DirectConnect dc(8, "d");
    const std::array<std::uint32_t, 8> banks{0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(dc.routeGroup(banks), 1u);
}

TEST(Interconnect, DirectIsMuchSmallerThanCrossbar)
{
    Crossbar xbar(8, 8, "x");
    DirectConnect dc(8, "d");
    // Fig. 12(b): eliminating the crossbar saves interconnect area.
    EXPECT_GT(xbar.profile().areaUnits, 10.0 * dc.profile().areaUnits);
    EXPECT_GT(xbar.profile().traversalLatency, dc.profile().traversalLatency);
}

/** A module that counts down N cycles. */
class Countdown : public Clocked
{
  public:
    explicit Countdown(Cycles n) : Clocked("cd"), remaining_(n) {}
    void
    tick(Cycles) override
    {
        if (remaining_ > 0)
            --remaining_;
    }
    bool done() const override { return remaining_ == 0; }

  private:
    Cycles remaining_;
};

TEST(Simulator, RunsUntilDrained)
{
    Countdown a(5), b(9);
    Simulator sim;
    sim.add(&a);
    sim.add(&b);
    EXPECT_EQ(sim.run(), 9u);
    EXPECT_EQ(sim.now(), 9u);
}

TEST(Simulator, RunForAdvancesClock)
{
    Countdown a(100);
    Simulator sim;
    sim.add(&a);
    sim.runFor(10);
    EXPECT_EQ(sim.now(), 10u);
    EXPECT_FALSE(a.done());
}

} // namespace
} // namespace fusion3d::sim
