#include "nerf/pipeline.h"

#include "common/logging.h"
#include "common/quant.h"

namespace fusion3d::nerf
{

namespace
{

AdamConfig
adamFor(float lr, bool sparse)
{
    AdamConfig cfg;
    cfg.lr = lr;
    cfg.beta1 = 0.9f;
    cfg.beta2 = 0.99f;
    cfg.epsilon = 1e-15f;
    cfg.skipZeroGrad = sparse;
    return cfg;
}

} // namespace

NerfPipeline::NerfPipeline(const PipelineConfig &cfg)
    : cfg_(cfg),
      model_(std::make_unique<NerfModel>(cfg.model, cfg.seed)),
      grid_(cfg.occupancyResolution, cfg.occupancyThreshold),
      sampler_(cfg.sampler),
      ws_(model_->makeWorkspace()),
      adam_encoding_(model_->encoding().paramCount(), adamFor(cfg.lrEncoding, true)),
      adam_density_(model_->densityNet().paramCount(), adamFor(cfg.lrNet, false)),
      adam_color_(model_->colorNet().paramCount(), adamFor(cfg.lrNet, false))
{
}

RayEval
NerfPipeline::traceRay(const Ray &ray, Pcg32 &rng, bool record, RayWorkload *workload)
{
    std::vector<RaySample> &samples = record ? tape_samples_ : scratch_samples_;
    sampler_.sample(ray, &grid_, rng, samples, workload);

    RayEval ev;
    ev.samples = static_cast<int>(samples.size());
    ev.candidates = workload ? workload->totalCandidates : ev.samples;

    std::vector<float> &sigmas = tape_sigmas_;
    std::vector<Vec3f> &rgbs = tape_rgbs_;
    std::vector<float> &dts = tape_dts_;
    sigmas.resize(samples.size());
    rgbs.resize(samples.size());
    dts.resize(samples.size());

    const Vec3f dir = normalize(ray.dir);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const PointEval pe = model_->forwardPoint(samples[i].pos, dir, ws_, visitor_);
        sigmas[i] = pe.sigma;
        rgbs[i] = pe.rgb;
        dts[i] = samples[i].dt;
    }

    const CompositeResult cr = composite(sigmas, rgbs, dts, cfg_.render);
    ev.color = cr.color;
    ev.transmittance = cr.transmittance;
    ev.composited = cr.used;
    if (!samples.empty())
        ev.firstHitT = samples.front().t;

    if (record) {
        tape_dir_ = dir;
        tape_result_ = cr;
        tape_valid_ = true;
    }
    return ev;
}

void
NerfPipeline::backwardLastRay(const Vec3f &dcolor)
{
    if (!tape_valid_)
        panic("backwardLastRay without a recorded traceRay");

    tape_dsigmas_.resize(tape_sigmas_.size());
    tape_drgbs_.resize(tape_rgbs_.size());
    compositeBackward(tape_sigmas_, tape_rgbs_, tape_dts_, cfg_.render, tape_result_,
                      dcolor, tape_dsigmas_, tape_drgbs_);

    for (int i = 0; i < tape_result_.used; ++i) {
        model_->backwardPoint(tape_samples_[static_cast<std::size_t>(i)].pos, tape_dir_,
                              tape_dsigmas_[static_cast<std::size_t>(i)],
                              tape_drgbs_[static_cast<std::size_t>(i)], ws_);
    }
    tape_valid_ = false;
}

void
NerfPipeline::zeroGrads()
{
    model_->zeroGrads();
}

void
NerfPipeline::optimizerStep()
{
    adam_encoding_.step(model_->encoding().params(), model_->encoding().grads());
    adam_density_.step(model_->densityNet().params(), model_->densityNet().grads());
    adam_color_.step(model_->colorNet().params(), model_->colorNet().grads());
}

void
NerfPipeline::updateOccupancy(Pcg32 &rng)
{
    grid_.update([this](const Vec3f &p) { return model_->queryDensity(p, ws_); }, rng);
}

void
NerfPipeline::quantizeWeights()
{
    fakeQuantizeInPlace(model_->encoding().params());
    fakeQuantizeInPlace(model_->densityNet().params());
    fakeQuantizeInPlace(model_->colorNet().params());
}

std::size_t
NerfPipeline::paramCount() const
{
    return model_->paramCount();
}

} // namespace fusion3d::nerf
