/**
 * @file
 * Regenerates Fig. 6(d) and the Technique-T2 ablation (Sec. IV-B3):
 * FIEM vs INT2FP+FPMUL area/power, the Stage-II sharing split (87.4%
 * shared / 12.6% reconfigured), and a functional demonstration of the
 * reconfigurable interpolation array with a microbenchmark of the
 * bit-exact FIEM datapath model.
 */

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "chip/fiem.h"
#include "chip/hw_cost.h"
#include "chip/interp_array.h"
#include "chip/interp_module.h"
#include "common/rng.h"

using namespace fusion3d;

int
main()
{
    bench::banner("Fig. 6(d): FIEM vs INT2FP + FPMUL (unit-gate model)");

    for (int int_bits : {4, 8, 16}) {
        const chip::HwCost trad = chip::fiem_cost::int2fpPlusFpmul(int_bits);
        const chip::HwCost fiem = chip::fiem_cost::fiem(int_bits);
        std::printf("INT%-2d weights: area %.0f -> %.0f units (%.0f%% saving), "
                    "power %.0f -> %.0f units (%.0f%% saving)\n",
                    int_bits, trad.areaUnits, fiem.areaUnits,
                    (1.0 - fiem.areaUnits / trad.areaUnits) * 100.0, trad.energyUnits,
                    fiem.energyUnits,
                    (1.0 - fiem.energyUnits / trad.energyUnits) * 100.0);
    }
    std::printf("Paper (INT8): 55%% area reduction, 65%% power saving.\n\n");

    bench::banner("Sec. IV-B3: Stage-II pipeline sharing between inference/training");
    const chip::StageTwoSharing s = chip::stageTwoSharing();
    std::printf("Directly shared units:    %.0f (%.1f%%)\n", s.sharedUnits,
                s.sharedFraction() * 100.0);
    std::printf("Reconfigured units:       %.0f (%.1f%%)\n", s.reconfiguredUnits,
                s.reconfiguredFraction() * 100.0);
    std::printf("Duplication avoided:      %.0f units (one interpolation array "
                "instead of two)\n",
                s.duplicatedSavingUnits);
    std::printf("Paper: 87.4%% directly shared, 12.6%% reused via reconfiguration.\n\n");

    bench::banner("Fig. 6(c): time-division multiplexing training + inference");
    {
        // A 36-FPS render stream riding a training run: equal group
        // populations through the 10-core Stage II.
        const std::uint64_t train_groups = 8'000'000;
        const std::uint64_t infer_groups = 6'000'000;
        const chip::TdmResult tdm = chip::tdmCoSchedule(train_groups, infer_groups, 10);
        std::printf("training alone:   %10llu cycles (3-slot feature updates)\n",
                    static_cast<unsigned long long>(tdm.trainingCycles));
        std::printf("inference alone:  %10llu cycles\n",
                    static_cast<unsigned long long>(tdm.inferenceAloneCycles));
        std::printf("TDM co-schedule:  %10llu cycles  (%llu of %llu inference "
                    "groups absorbed into idle slots, %.0f%% of the sequential "
                    "time saved)\n\n",
                    static_cast<unsigned long long>(tdm.tdmCycles),
                    static_cast<unsigned long long>(tdm.inferenceAbsorbed),
                    static_cast<unsigned long long>(infer_groups),
                    100.0 * static_cast<double>(tdm.savedCycles()) /
                        static_cast<double>(tdm.trainingCycles +
                                            tdm.inferenceAloneCycles));
    }

    bench::banner("Reconfigurable array: forward MAC-tree vs backward scatter");
    Pcg32 rng(6, 6);
    std::array<Half, 8> feats;
    std::array<float, 8> weights;
    for (int i = 0; i < 8; ++i) {
        feats[static_cast<std::size_t>(i)] = Half::fromFloat(rng.nextRange(-1.0f, 1.0f));
        weights[static_cast<std::size_t>(i)] = rng.nextFloat();
    }
    const chip::QuantizedWeights q = chip::quantizeWeights(weights);
    const float fwd = chip::InterpArray::forwardMacTree(feats, q);
    const auto bwd = chip::InterpArray::backwardScatter(Half::fromFloat(1.0f), q);
    float transpose_check = 0.0f;
    for (int i = 0; i < 8; ++i)
        transpose_check +=
            bwd[static_cast<std::size_t>(i)] * feats[static_cast<std::size_t>(i)].toFloat();
    std::printf("forward(f, w) = %.6f; <backward(1, w), f> = %.6f (same bilinear "
                "form, inverted edges)\n\n",
                fwd, transpose_check);

    bench::banner("FIEM functional-model microbenchmark");
    const auto t0 = std::chrono::steady_clock::now();
    volatile float sink = 0.0f;
    constexpr int kOps = 2'000'000;
    Pcg32 mrng(7, 7);
    for (int i = 0; i < kOps; ++i) {
        const Half h = Half::fromBits(static_cast<std::uint16_t>(mrng.nextUint() & 0x7bff));
        sink = sink + chip::fiemMultiply(h, static_cast<int>(mrng.nextBounded(255)));
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    std::printf("%d bit-exact FIEM multiplies in %.3f s (%.1f M op/s, host)\n", kOps,
                sec, kOps / sec / 1e6);
    return 0;
}
