#include "nerf/occupancy_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace fusion3d::nerf
{

OccupancyGrid::OccupancyGrid(int resolution, float threshold)
    : res_(resolution), threshold_(threshold)
{
    if (resolution < 1)
        fatal("OccupancyGrid resolution must be positive (got %d)", resolution);
    const std::size_t n = static_cast<std::size_t>(res_) * res_ * res_;
    density_.assign(n, 0.0f);
    occupied_.assign(n, true); // everything occupied until first update
}

std::size_t
OccupancyGrid::cellIndex(const Vec3f &pos) const
{
    const auto clamp_axis = [this](float v) {
        const int i = static_cast<int>(v * static_cast<float>(res_));
        return static_cast<std::size_t>(std::clamp(i, 0, res_ - 1));
    };
    const std::size_t x = clamp_axis(pos.x);
    const std::size_t y = clamp_axis(pos.y);
    const std::size_t z = clamp_axis(pos.z);
    return (z * res_ + y) * res_ + x;
}

Vec3f
OccupancyGrid::cellCenter(std::size_t idx) const
{
    const std::size_t r = static_cast<std::size_t>(res_);
    const std::size_t x = idx % r;
    const std::size_t y = (idx / r) % r;
    const std::size_t z = idx / (r * r);
    const float inv = 1.0f / static_cast<float>(res_);
    return {(static_cast<float>(x) + 0.5f) * inv,
            (static_cast<float>(y) + 0.5f) * inv,
            (static_cast<float>(z) + 0.5f) * inv};
}

void
OccupancyGrid::update(const std::function<float(const Vec3f &)> &density, Pcg32 &rng,
                      float decay)
{
    const float inv = 1.0f / static_cast<float>(res_);
    for (std::size_t i = 0; i < density_.size(); ++i) {
        Vec3f p = cellCenter(i);
        // Jitter within the cell so thin structures are found eventually.
        p.x += (rng.nextFloat() - 0.5f) * inv;
        p.y += (rng.nextFloat() - 0.5f) * inv;
        p.z += (rng.nextFloat() - 0.5f) * inv;
        const float fresh = density(clamp(p, 0.0f, 1.0f));
        density_[i] = std::max(density_[i] * decay, fresh);
        occupied_[i] = density_[i] > threshold_;
    }
}

void
OccupancyGrid::collectProbePositions(Pcg32 &rng, std::vector<Vec3f> &out) const
{
    out.resize(density_.size());
    const float inv = 1.0f / static_cast<float>(res_);
    for (std::size_t i = 0; i < density_.size(); ++i) {
        Vec3f p = cellCenter(i);
        // Exactly the three draws update() makes, in the same order.
        p.x += (rng.nextFloat() - 0.5f) * inv;
        p.y += (rng.nextFloat() - 0.5f) * inv;
        p.z += (rng.nextFloat() - 0.5f) * inv;
        out[i] = clamp(p, 0.0f, 1.0f);
    }
}

void
OccupancyGrid::applyDensities(std::span<const float> fresh, float decay)
{
    if (fresh.size() != density_.size())
        fatal("OccupancyGrid::applyDensities expects %zu samples (got %zu)",
              density_.size(), fresh.size());
    for (std::size_t i = 0; i < density_.size(); ++i) {
        density_[i] = std::max(density_[i] * decay, fresh[i]);
        occupied_[i] = density_[i] > threshold_;
    }
}

void
OccupancyGrid::markAll()
{
    std::fill(occupied_.begin(), occupied_.end(), true);
}

void
OccupancyGrid::clearAll()
{
    std::fill(occupied_.begin(), occupied_.end(), false);
    std::fill(density_.begin(), density_.end(), 0.0f);
}

void
OccupancyGrid::maskRegion(const std::function<bool(const Vec3f &)> &keep)
{
    for (std::size_t i = 0; i < occupied_.size(); ++i) {
        if (!keep(cellCenter(i))) {
            occupied_[i] = false;
            density_[i] = 0.0f;
        }
    }
}

int
OccupancyGrid::traverse(const Ray &ray, float t_min, float t_max,
                        std::vector<Interval> &out, int *steps) const
{
    out.clear();
    if (steps)
        *steps = 0;
    if (t_max <= t_min)
        return 0;

    const float res = static_cast<float>(res_);
    // Start strictly inside the first cell.
    const float eps = 1e-6f;
    float t = t_min + eps;
    Vec3f p = clamp(ray.at(t), 0.0f, 1.0f - 1e-6f);
    int cx = static_cast<int>(p.x * res);
    int cy = static_cast<int>(p.y * res);
    int cz = static_cast<int>(p.z * res);

    const int step_x = ray.dir.x > 0.0f ? 1 : -1;
    const int step_y = ray.dir.y > 0.0f ? 1 : -1;
    const int step_z = ray.dir.z > 0.0f ? 1 : -1;

    // Parametric distance to the next cell boundary per axis.
    const auto next_boundary = [&](int c, int step, float o, float inv) {
        const float edge = (static_cast<float>(c + (step > 0 ? 1 : 0))) / res;
        return (edge - o) * inv;
    };

    bool in_occupied = false;
    float interval_start = 0.0f;

    while (t < t_max) {
        if (steps)
            ++*steps;
        const bool occ =
            occupied_[(static_cast<std::size_t>(cz) * res_ + cy) * res_ + cx];
        if (occ && !in_occupied) {
            in_occupied = true;
            interval_start = std::max(t - eps, t_min);
        }

        // Advance to the next cell along the smallest boundary crossing.
        float tx = std::isinf(ray.invDir.x)
                       ? std::numeric_limits<float>::infinity()
                       : next_boundary(cx, step_x, ray.origin.x, ray.invDir.x);
        float ty = std::isinf(ray.invDir.y)
                       ? std::numeric_limits<float>::infinity()
                       : next_boundary(cy, step_y, ray.origin.y, ray.invDir.y);
        float tz = std::isinf(ray.invDir.z)
                       ? std::numeric_limits<float>::infinity()
                       : next_boundary(cz, step_z, ray.origin.z, ray.invDir.z);

        float t_next;
        if (tx <= ty && tx <= tz) {
            t_next = tx;
            cx += step_x;
        } else if (ty <= tz) {
            t_next = ty;
            cy += step_y;
        } else {
            t_next = tz;
            cz += step_z;
        }
        t_next = std::max(t_next, t + eps); // guard against FP stalls

        if (!occ && in_occupied) {
            in_occupied = false;
            out.push_back({interval_start, std::min(t, t_max)});
        }

        if (cx < 0 || cy < 0 || cz < 0 || cx >= res_ || cy >= res_ || cz >= res_) {
            t = t_next;
            break;
        }
        t = t_next;
    }

    if (in_occupied)
        out.push_back({interval_start, std::min(t, t_max)});
    return static_cast<int>(out.size());
}

double
OccupancyGrid::occupiedFraction() const
{
    std::size_t n = 0;
    for (bool b : occupied_)
        n += b ? 1 : 0;
    return occupied_.empty() ? 0.0
                             : static_cast<double>(n) / static_cast<double>(occupied_.size());
}

} // namespace fusion3d::nerf
