/**
 * @file
 * A ray in 3D model space. Direction is stored together with its
 * reciprocal so the hot ray/box code never re-divides (Sec. IV-A of the
 * paper: division is the expensive operation the sampling module avoids).
 */

#ifndef FUSION3D_COMMON_RAY_H_
#define FUSION3D_COMMON_RAY_H_

#include <limits>

#include "common/vec.h"

namespace fusion3d
{

/** A parametric ray: p(t) = origin + t * dir. */
struct Ray
{
    Vec3f origin;
    Vec3f dir;
    /** Component-wise reciprocal of dir, +/-inf where dir is zero. */
    Vec3f invDir;

    Ray() = default;

    /** Build a ray and precompute the direction reciprocal. */
    Ray(const Vec3f &o, const Vec3f &d)
        : origin(o), dir(d),
          invDir(safeInv(d.x), safeInv(d.y), safeInv(d.z))
    {}

    /** Point on the ray at parameter @p t. */
    Vec3f at(float t) const { return origin + dir * t; }

  private:
    static float
    safeInv(float v)
    {
        if (v == 0.0f)
            return std::numeric_limits<float>::infinity();
        return 1.0f / v;
    }
};

} // namespace fusion3d

#endif // FUSION3D_COMMON_RAY_H_
