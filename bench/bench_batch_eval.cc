/**
 * @file
 * Batched-vs-scalar field-evaluation bench across every backend, with
 * SIMD-dispatch and quantization axes: samples/sec of the scalar
 * forwardPoint loop against the batched SoA core at batch sizes
 * 1/32/256/2048. Covers the hash-grid NerfModel (forwardBatch), the
 * frequency-encoded FreqNerfModel, and the CP-factorized TensorfModel
 * (forwardPointBatch). The hash-grid backend additionally runs the
 * quantized inference modes (fp16/int8 packed weight images) and an
 * end-to-end traceRays section that shows the occupancy-compaction win
 * (fewer MLP-visible samples per ray) rather than hiding it behind
 * per-sample metrics.
 *
 * Prints the usual table per configuration plus one machine-readable
 * JSON summary line (prefixed "JSON:", kept as the BENCH_backends.json
 * CI artifact) whose entries each record the SIMD `dispatch`, `quant`
 * mode, and batched `sps`. Exits non-zero when a gate fails:
 *  - any fp32 batched path slower than scalar at batch 256;
 *  - SIMD-dispatch fp32 < 1.5x the forced-scalar-dispatch batched
 *    baseline at batch 256 on the hash-grid backend (skipped when the
 *    host has no SIMD dispatch to measure);
 *  - end-to-end compaction not reducing MLP-visible samples, running
 *    slower than the ungated baseline, or diverging bit-wise from the
 *    gated path's composited colors.
 *
 * Usage: bench_batch_eval [--quick] [--backend nerf|freq|tensorf|all]
 *                         [--quant fp32|fp16|int8|all] [--simd on|off|both]
 *                         [samples_per_config]
 *
 *  --quick    reduce the per-configuration sample budget for CI smoke
 *             runs (the speedup, not the absolute rate, is the gate).
 *  --backend  which backend(s) to measure (default all).
 *  --quant    which hash-grid inference weight format(s) (default all).
 *  --simd     dispatch arms to measure; "both" (default) measures the
 *             hardware dispatch and the forced-scalar fallback so the
 *             SIMD speedup gate has both sides.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/quant.h"
#include "common/rng.h"
#include "common/simd.h"
#include "nerf/freq_nerf.h"
#include "nerf/nerf_model.h"
#include "nerf/tensorf.h"

using namespace fusion3d;

namespace
{

struct EvalPoint
{
    std::size_t batch;
    double scalarSps;
    double batchedSps;
    double speedup;
};

struct ConfigResult
{
    std::string backend;
    std::string dispatch;
    std::string quant;
    std::vector<EvalPoint> points;
    double speedup256 = 0.0;
    double batchedSps256 = 0.0;
};

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

void
fillInputs(std::size_t batch, std::vector<Vec3f> &pos, std::vector<Vec3f> &dirs)
{
    Pcg32 rng(2026);
    pos.resize(batch);
    dirs.resize(batch);
    for (std::size_t j = 0; j < batch; ++j) {
        pos[j] = clamp(rng.nextVec3(), 0.01f, 0.99f);
        dirs[j] = rng.nextUnitVector();
    }
}

EvalPoint
finishPoint(std::size_t batch, std::size_t reps, double scalar_s,
            double batched_s)
{
    EvalPoint p{};
    p.batch = batch;
    const double samples = static_cast<double>(reps * batch);
    p.scalarSps = samples / scalar_s;
    p.batchedSps = samples / batched_s;
    p.speedup = p.batchedSps / p.scalarSps;
    return p;
}

EvalPoint
measureNerf(const nerf::NerfModel &model, std::size_t batch, std::size_t budget)
{
    std::vector<Vec3f> pos, dirs;
    fillInputs(batch, pos, dirs);
    const std::size_t reps = std::max<std::size_t>(1, budget / batch);
    std::vector<float> sigmas(batch);
    std::vector<Vec3f> rgbs(batch);

    // Checksum keeps the optimizer from discarding the work; the fp32
    // paths are bit-exact, so it doubles as a cheap equivalence check.
    double sum_scalar = 0.0, sum_batched = 0.0;

    nerf::PointWorkspace pws = model.makeWorkspace();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep)
        for (std::size_t j = 0; j < batch; ++j)
            sum_scalar += model.forwardPoint(pos[j], dirs[j], pws).sigma;
    const double scalar_s = secondsSince(t0);

    nerf::NerfBatchWorkspace bws = model.makeBatchWorkspace(batch);
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
        model.forwardBatch(pos, dirs, bws, sigmas, rgbs);
        sum_batched += sigmas[rep % batch];
    }
    const double batched_s = secondsSince(t1);
    if (sum_scalar < 0.0 && sum_batched < 0.0) // sigmas are positive
        fatal("impossible checksum");
    return finishPoint(batch, reps, scalar_s, batched_s);
}

/** The point-model backends (FreqNeRF, TensoRF) share the batched
 *  contract, so one template measures both. */
template <class ModelT>
EvalPoint
measurePointModel(ModelT &model, std::size_t batch, std::size_t budget)
{
    std::vector<Vec3f> pos, dirs;
    fillInputs(batch, pos, dirs);
    const std::size_t reps = std::max<std::size_t>(1, budget / batch);
    std::vector<float> sigmas(batch);
    std::vector<Vec3f> rgbs(batch);

    double sum_scalar = 0.0, sum_batched = 0.0;

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep)
        for (std::size_t j = 0; j < batch; ++j)
            sum_scalar += model.forwardPoint(pos[j], dirs[j]).sigma;
    const double scalar_s = secondsSince(t0);

    typename ModelT::BatchWorkspace ws = model.makeBatchWorkspace();
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
        model.forwardPointBatch(pos, dirs, ws, sigmas, rgbs);
        sum_batched += sigmas[rep % batch];
    }
    const double batched_s = secondsSince(t1);
    if (sum_scalar < 0.0 && sum_batched < 0.0) // sigmas are positive
        fatal("impossible checksum");
    return finishPoint(batch, reps, scalar_s, batched_s);
}

constexpr std::size_t kBatches[] = {1, 32, 256, 2048};

template <class MeasureFn>
ConfigResult
runConfig(const char *backend, const char *quant, std::size_t budget,
          MeasureFn &&measure)
{
    bench::banner((std::string("Batched SoA field evaluation [") + backend +
                   " dispatch=" + simd::dispatchName() + " quant=" + quant +
                   "]: samples/s vs batch size")
                      .c_str());
    std::printf("%-12s %16s %16s %10s\n", "batch", "scalar (sm/s)",
                "batched (sm/s)", "speedup");

    ConfigResult r;
    r.backend = backend;
    r.dispatch = simd::dispatchName();
    r.quant = quant;
    for (const std::size_t batch : kBatches) {
        r.points.push_back(measure(batch, budget));
        const EvalPoint &p = r.points.back();
        if (p.batch == 256) {
            r.speedup256 = p.speedup;
            r.batchedSps256 = p.batchedSps;
        }
        std::printf("%-12zu %16.0f %16.0f %9.2fx\n", p.batch, p.scalarSps,
                    p.batchedSps, p.speedup);
    }
    bench::rule();
    return r;
}

// --- End-to-end traceRays: the occupancy-compaction section ----------------

struct E2eResult
{
    bool ran = false;
    double ungatedSps = 0.0; ///< candidate samples/s, all-occupied gate
    double gatedSps = 0.0;   ///< candidate samples/s, sampler-gated
    double compactSps = 0.0; ///< candidate samples/s, batch compaction
    std::uint64_t batchSamples = 0; ///< compact arm: samples in the batch
    std::uint64_t mlpSamples = 0;   ///< compact arm: samples the MLP saw
    bool colorsMatch = true; ///< compact vs gated composited colors
};

double
traceArm(nerf::NerfPipeline &pipe, std::span<const Ray> rays, std::size_t reps,
         std::vector<nerf::RayEval> &evals, std::uint64_t &candidates)
{
    evals.resize(rays.size());
    candidates = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
        // Identical streams across arms: the jitter draws (one per ray)
        // then decide the same candidate ts everywhere.
        Pcg32 rng(777, rep);
        nerf::RayWorkload wl;
        pipe.traceRays(rays, rng, /*record=*/false, evals, &wl);
        candidates += static_cast<std::uint64_t>(wl.totalCandidates);
    }
    return secondsSince(t0);
}

/**
 * Trace the same ray set three ways on the demo scene: through an
 * all-occupied gate (every candidate reaches the MLP), through the
 * sampler's occupancy gate, and with batch-build compaction. The rate
 * unit is *candidate* samples/s — equal work per arm — so skipping
 * empty space shows up as throughput instead of vanishing into a
 * per-sample metric.
 */
E2eResult
measureE2e(std::size_t budget)
{
    const auto scene = scenes::makeSyntheticScene("lego");
    const nerf::Camera cam = nerf::Camera::orbit(
        {0.5f, 0.45f, 0.5f}, 1.4f, 25.0f, 20.0f, 45.0f, 128, 128);
    std::vector<Ray> rays;
    for (int y = 0; y < 128; y += 4)
        for (int x = 0; x < 128; ++x)
            rays.push_back(cam.rayForPixel(x, y));
    const std::size_t reps = std::max<std::size_t>(
        1, budget / (rays.size() * 64)); // ~maxSamplesPerRay candidates/ray

    E2eResult r;
    r.ran = true;
    std::vector<nerf::RayEval> evals_ungated, evals_gated, evals_compact;
    std::uint64_t cand_ungated = 0, cand_gated = 0, cand_compact = 0;

    {
        // All-occupied gate (a grid never updated keeps every cell on):
        // the pre-compaction worst case, every candidate hits the MLP.
        nerf::NerfPipeline ungated(bench::defaultPipeline());
        const double s =
            traceArm(ungated, rays, reps, evals_ungated, cand_ungated);
        r.ungatedSps = static_cast<double>(cand_ungated) / s;
    }

    auto pipe = bench::pipelineForScene(*scene);
    pipe->setOccupancyCompaction(false);
    {
        const double s = traceArm(*pipe, rays, reps, evals_gated, cand_gated);
        r.gatedSps = static_cast<double>(cand_gated) / s;
    }
    pipe->setOccupancyCompaction(true);
    {
        const double s =
            traceArm(*pipe, rays, reps, evals_compact, cand_compact);
        r.compactSps = static_cast<double>(cand_compact) / s;
        const nerf::RayBatchEvaluator::CompactionStats cs = pipe->lastCompaction();
        r.batchSamples = cs.batchSamples;
        r.mlpSamples = cs.mlpSamples;
    }

    for (std::size_t i = 0; i < rays.size(); ++i) {
        const Vec3f a = evals_gated[i].color;
        const Vec3f b = evals_compact[i].color;
        if (a.x != b.x || a.y != b.y || a.z != b.z)
            r.colorsMatch = false;
    }

    bench::banner("End-to-end traceRays [hash_grid, lego]: candidate samples/s");
    std::printf("%-28s %18s\n", "arm", "candidates (sm/s)");
    std::printf("%-28s %18.0f\n", "ungated (all to MLP)", r.ungatedSps);
    std::printf("%-28s %18.0f\n", "sampler-gated", r.gatedSps);
    std::printf("%-28s %18.0f\n", "batch compaction", r.compactSps);
    std::printf("compaction batch: %llu samples, %llu MLP-visible (%.1f%%); "
                "colors vs gated: %s\n",
                static_cast<unsigned long long>(r.batchSamples),
                static_cast<unsigned long long>(r.mlpSamples),
                r.batchSamples
                    ? 100.0 * static_cast<double>(r.mlpSamples) /
                          static_cast<double>(r.batchSamples)
                    : 0.0,
                r.colorsMatch ? "bit-identical" : "MISMATCH");
    bench::rule();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t budget = 1u << 19;
    bool quick = false;
    std::string backend = "all";
    std::string quant = "all";
    std::string simd_arg = "both";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc)
            backend = argv[++i];
        else if (std::strcmp(argv[i], "--quant") == 0 && i + 1 < argc)
            quant = argv[++i];
        else if (std::strcmp(argv[i], "--simd") == 0 && i + 1 < argc)
            simd_arg = argv[++i];
        else if (std::atoll(argv[i]) > 0)
            budget = static_cast<std::size_t>(std::atoll(argv[i]));
        else
            fatal("usage: %s [--quick] [--backend nerf|freq|tensorf|all] "
                  "[--quant fp32|fp16|int8|all] [--simd on|off|both] "
                  "[samples_per_config]",
                  argv[0]);
    }
    if (backend != "all" && backend != "nerf" && backend != "freq" &&
        backend != "tensorf")
        fatal("unknown --backend '%s' (want nerf|freq|tensorf|all)",
              backend.c_str());
    QuantMode only_quant = QuantMode::fp32;
    if (quant != "all" && !parseQuantMode(quant.c_str(), &only_quant))
        fatal("unknown --quant '%s' (want fp32|fp16|int8|all)", quant.c_str());
    if (simd_arg != "on" && simd_arg != "off" && simd_arg != "both")
        fatal("unknown --simd '%s' (want on|off|both)", simd_arg.c_str());
    if (quick)
        budget = std::min<std::size_t>(budget, 1u << 16);

    std::vector<QuantMode> quants;
    if (quant == "all")
        quants = {QuantMode::fp32, QuantMode::fp16, QuantMode::int8};
    else
        quants = {only_quant};

    std::vector<bool> force_arms; // false = hardware dispatch, true = scalar
    if (simd_arg == "both")
        force_arms = {false, true};
    else
        force_arms = {simd_arg == "off"};

    std::vector<ConfigResult> results;
    for (const bool force : force_arms) {
        simd::forceScalar(force);
        for (const QuantMode qm : quants) {
            // The quantized image rides the same kernels on both arms;
            // measuring it once (hardware arm) keeps the run short.
            if (qm != QuantMode::fp32 && force && force_arms.size() > 1)
                continue;
            if (backend == "all" || backend == "nerf") {
                const nerf::NerfModelConfig mc = bench::defaultPipeline().model;
                nerf::NerfModel model(mc, 2024);
                if (qm != QuantMode::fp32) // keep fp32 for the scalar oracle
                    model.setInferenceQuant(qm, /*dropFp32=*/false);
                results.push_back(runConfig(
                    "hash_grid", quantModeName(qm), budget,
                    [&](std::size_t batch, std::size_t bgt) {
                        return measureNerf(model, batch, bgt);
                    }));
            }
            if (qm != QuantMode::fp32)
                continue; // the point backends have no packed image yet
            if (backend == "all" || backend == "freq") {
                nerf::FreqNerfModel model(nerf::FreqNerfConfig{}, 2024);
                results.push_back(runConfig(
                    "freq_nerf", quantModeName(qm), budget,
                    [&](std::size_t batch, std::size_t bgt) {
                        return measurePointModel(model, batch, bgt);
                    }));
            }
            if (backend == "all" || backend == "tensorf") {
                nerf::TensorfModel model(nerf::TensorfModelConfig{}, 2024);
                results.push_back(runConfig(
                    "tensorf", quantModeName(qm), budget,
                    [&](std::size_t batch, std::size_t bgt) {
                        return measurePointModel(model, batch, bgt);
                    }));
            }
        }
    }
    simd::forceScalar(false);

    // SIMD-vs-scalar speedup of the batched fp32 path at batch 256, per
    // backend, when both dispatch arms were measured.
    const bool both_arms = force_arms.size() > 1;
    const bool simd_available =
        std::strcmp(simd::dispatchName(), "scalar") != 0;
    struct SimdSpeedup
    {
        std::string backend;
        double speedup = 0.0;
    };
    std::vector<SimdSpeedup> simd_speedups;
    if (both_arms && simd_available) {
        for (const ConfigResult &on : results) {
            if (on.quant != "fp32" || on.dispatch == "scalar")
                continue;
            for (const ConfigResult &off : results) {
                if (off.backend == on.backend && off.quant == "fp32" &&
                    off.dispatch == "scalar" && off.batchedSps256 > 0.0)
                    simd_speedups.push_back(
                        {on.backend, on.batchedSps256 / off.batchedSps256});
            }
        }
        bench::banner("SIMD dispatch vs forced-scalar: batched fp32 at batch 256");
        for (const SimdSpeedup &s : simd_speedups)
            std::printf("%-12s %9.2fx\n", s.backend.c_str(), s.speedup);
        bench::rule();
    }

    E2eResult e2e;
    if (backend == "all" || backend == "nerf")
        e2e = measureE2e(budget);

    std::string json = "{\"bench\":\"batch_eval\",\"quick\":" +
                       std::string(quick ? "true" : "false") +
                       ",\"samples_per_config\":" + std::to_string(budget) +
                       ",\"dispatch\":\"" + simd::dispatchName() +
                       "\",\"backends\":[";
    char buf[256];
    for (std::size_t b = 0; b < results.size(); ++b) {
        const ConfigResult &r = results[b];
        json += std::string(b ? "," : "") + "{\"backend\":\"" + r.backend +
                "\",\"dispatch\":\"" + r.dispatch + "\",\"quant\":\"" +
                r.quant + "\",\"points\":[";
        for (std::size_t i = 0; i < r.points.size(); ++i) {
            const EvalPoint &p = r.points[i];
            std::snprintf(buf, sizeof(buf),
                          "%s{\"batch\":%zu,\"scalar_sps\":%.0f,"
                          "\"batched_sps\":%.0f,\"sps\":%.0f,\"speedup\":%.3f}",
                          i ? "," : "", p.batch, p.scalarSps, p.batchedSps,
                          p.batchedSps, p.speedup);
            json += buf;
        }
        std::snprintf(buf, sizeof(buf), "],\"speedup_256\":%.3f}", r.speedup256);
        json += buf;
    }
    json += "]";
    for (const SimdSpeedup &s : simd_speedups) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"backend\":\"%s\",\"speedup_256\":%.3f}",
                      &s == &simd_speedups.front() ? ",\"simd_speedup\":[" : ",",
                      s.backend.c_str(), s.speedup);
        json += buf;
    }
    if (!simd_speedups.empty())
        json += "]";
    if (e2e.ran) {
        std::snprintf(buf, sizeof(buf),
                      ",\"e2e\":{\"ungated_sps\":%.0f,\"gated_sps\":%.0f,"
                      "\"compact_sps\":%.0f,\"batch_samples\":%llu,"
                      "\"mlp_samples\":%llu,\"colors_bit_identical\":%s}",
                      e2e.ungatedSps, e2e.gatedSps, e2e.compactSps,
                      static_cast<unsigned long long>(e2e.batchSamples),
                      static_cast<unsigned long long>(e2e.mlpSamples),
                      e2e.colorsMatch ? "true" : "false");
        json += buf;
    }
    json += "}";
    std::printf("JSON: %s\n", json.c_str());

    bool failed = false;
    for (const ConfigResult &r : results) {
        if (r.quant == "fp32" && r.speedup256 < 1.0) {
            std::fprintf(stderr,
                         "FAIL: [%s dispatch=%s] batched path slower than "
                         "scalar at batch 256 (speedup %.3fx < 1.0x)\n",
                         r.backend.c_str(), r.dispatch.c_str(), r.speedup256);
            failed = true;
        }
    }
    if (both_arms) {
        if (!simd_available) {
            std::printf("SKIP: SIMD speedup gate (no SIMD dispatch on this "
                        "host/build)\n");
        } else {
            for (const SimdSpeedup &s : simd_speedups) {
                if (s.backend == "hash_grid" && s.speedup < 1.5) {
                    std::fprintf(stderr,
                                 "FAIL: [hash_grid] SIMD fp32 batched only "
                                 "%.3fx the scalar-dispatch baseline at batch "
                                 "256 (gate 1.5x)\n",
                                 s.speedup);
                    failed = true;
                }
            }
        }
    }
    if (e2e.ran) {
        if (e2e.mlpSamples >= e2e.batchSamples) {
            std::fprintf(stderr,
                         "FAIL: e2e compaction did not reduce MLP-visible "
                         "samples (%llu of %llu)\n",
                         static_cast<unsigned long long>(e2e.mlpSamples),
                         static_cast<unsigned long long>(e2e.batchSamples));
            failed = true;
        }
        if (e2e.compactSps <= e2e.ungatedSps) {
            std::fprintf(stderr,
                         "FAIL: e2e compaction (%.0f sm/s) not faster than "
                         "the ungated baseline (%.0f sm/s)\n",
                         e2e.compactSps, e2e.ungatedSps);
            failed = true;
        }
        if (!e2e.colorsMatch) {
            std::fprintf(stderr, "FAIL: e2e compaction colors diverge from "
                                 "the gated path\n");
            failed = true;
        }
    }
    return failed ? 1 : 0;
}
