/**
 * @file
 * Temporal reprojection rendering: serve a camera-stream frame by
 * forward-warping the session's previous frame into the requested view
 * and ray-marching only the tiles the warp could not reconstruct.
 *
 * This flips the serving layer's degrade ladder into an *accelerate*
 * ladder (ROADMAP item 1, the MetaVRain > 97 %-overlap observation):
 * for consecutive stream requests the full render becomes the
 * fallback, not the default. The target image is classified into fixed
 * square tiles; a tile is re-rendered when
 *
 *   - warp coverage dropped below tileCoverageMin (disocclusions,
 *     content entering at the image border, large motion),
 *   - its depth-conflict fraction exceeded tileConflictMax (occlusion
 *     boundaries where nearest-surface splatting papered over a
 *     disocclusion), or
 *   - it aged past maxTileAge frames since it was last truly rendered
 *     (staggered refresh, so nearest-neighbour resampling error cannot
 *     accumulate across a long warp chain).
 *
 * Valid tiles keep their warped pixels; invalid tiles are ray-marched
 * through the batched tile renderer and composited back. When too few
 * tiles survive (or a fault is injected into the tile pass — chaos
 * coverage), the frame degrades to a full render: reprojection may
 * only ever *save* work, never serve a hole.
 */

#ifndef FUSION3D_SERVE_REPROJECT_H_
#define FUSION3D_SERVE_REPROJECT_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "nerf/image_warp.h"
#include "nerf/nerf_model.h"
#include "nerf/occupancy_grid.h"
#include "nerf/parallel_render.h"
#include "serve/session.h"

namespace fusion3d::serve
{

/** Tunables of the reprojection renderer. */
struct ReprojectConfig
{
    /** Master switch; off = every request full-renders as before. */
    bool enabled = true;
    /** Square invalidation-tile edge in pixels. */
    int tileSize = 16;
    /** A tile is valid only when its warp coverage is >= this; the
     *  default 1.0 re-renders any tile with even one uncovered pixel,
     *  so a served frame can never contain a hole. */
    double tileCoverageMin = 1.0;
    /** ... and its depth-conflict fraction is <= this. */
    double tileConflictMax = 0.02;
    /** ... and it is younger than this many frames since its last true
     *  render. Old tiles re-render round-robin, bounding the warp-chain
     *  length any pixel can accumulate error over. */
    int maxTileAge = 8;
    /** Below this valid-tile fraction reprojection is not worth the
     *  warp: fall back to a full render. */
    double minValidFraction = 0.3;
    /** Depth tolerance of the warp's occlusion-boundary test
     *  (WarpOptions::depthTolerance). */
    float depthTolerance = 0.1f;
};

/** What one reprojection attempt did, for stats and benches. */
struct ReprojectStats
{
    /** True when the frame was served by warp + partial re-render;
     *  false when it fell back to a full render. */
    bool reprojected = false;
    /** Why the fallback happened ("" when reprojected). */
    const char *fallback = "";
    int tilesTotal = 0;
    int tilesRerendered = 0;
    /** Pixels actually ray-marched (all of them on fallback). */
    std::uint64_t raysRendered = 0;
    /** Pixels served from the warp instead of the ray-marcher. */
    std::uint64_t raysSaved = 0;
    /** Global warp coverage (0 on fallback before the warp ran). */
    double warpCoverage = 0.0;
    /** Measured cost of the warp pass / the tile render pass. */
    double warpSeconds = 0.0;
    double renderSeconds = 0.0;
};

/** A reprojection result: the frame plus the session's next tile ages. */
struct ReprojectOutput
{
    nerf::DepthFrame frame;
    /** Tile age grid to carry into the session store (0 where
     *  re-rendered, previous age + 1 where warped). */
    std::vector<std::uint16_t> tileAge;
    ReprojectStats stats;
};

/**
 * Age grid of a freshly full-rendered frame for @p camera, shaped for
 * @p tile_size tiles. Birth ages are staggered over
 * [0, @p max_tile_age) in a fixed spatial pattern so the staggered
 * refresh re-renders ~1/maxTileAge of the tiles per frame instead of
 * the whole grid expiring at once (which would degrade every
 * maxTileAge-th frame of a stream to a full render).
 */
std::vector<std::uint16_t> freshTileAges(const nerf::Camera &camera,
                                         int tile_size, int max_tile_age);

/**
 * Render @p camera's view of @p model, reusing @p prev (the session's
 * last frame) wherever the warp holds up; fall back to a full render
 * otherwise. Pixel-exact contract: with jitter disabled, every
 * ray-marched pixel (and the whole frame on fallback) is bit-identical
 * to a full renderDepthFrameTiled() of the same configuration.
 *
 * The "serve.reproject.tiles" fault point (chaos testing) fails the
 * tile pass and exercises the full-render fallback.
 */
ReprojectOutput reprojectRender(const nerf::ServeableField &model,
                                const nerf::OccupancyGrid *grid,
                                const nerf::Camera &camera,
                                const SessionFrame &prev,
                                const nerf::TiledRenderConfig &render_cfg,
                                const ReprojectConfig &cfg, ThreadPool *pool);

} // namespace fusion3d::serve

#endif // FUSION3D_SERVE_REPROJECT_H_
