/** @file Tests of the temporal reprojection render cache: per-tile warp
 *  statistics and the depth-consistency signal, tile invalidation
 *  correctness, the PSNR and rays-saved bounds of reprojected frames on
 *  an orbiting trace, session-store TTL/LRU eviction, stale-epoch
 *  invalidation across a model hot-swap, cold-cache bit-exactness, and
 *  the chaos fallback (a faulted tile pass degrades to a full render,
 *  never a hole). Expected to pass under -DFUSION3D_SANITIZE=thread. */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "nerf/image_warp.h"
#include "nerf/parallel_render.h"
#include "serve/model_registry.h"
#include "serve/reproject.h"
#include "serve/scheduler.h"
#include "serve/session.h"

namespace fusion3d::serve
{
namespace
{

nerf::NerfModelConfig
tinyModelConfig()
{
    nerf::NerfModelConfig cfg;
    cfg.grid.levels = 4;
    cfg.grid.featuresPerLevel = 2;
    cfg.grid.log2TableSize = 9;
    cfg.grid.baseResolution = 4;
    cfg.grid.maxResolution = 32;
    cfg.geoFeatures = 7;
    cfg.densityHidden = 16;
    cfg.colorHidden = 16;
    cfg.shDegree = 2;
    return cfg;
}

nerf::Camera
orbitCamera(float azim_deg, int size)
{
    return nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, azim_deg, 20.0f, 45.0f,
                               size, size);
}

/** A flat-depth synthetic frame whose colors encode pixel position. */
nerf::DepthFrame
syntheticFrame(const nerf::Camera &cam, float depth = 1.4f)
{
    nerf::DepthFrame frame;
    frame.camera = cam;
    frame.color = Image(cam.width(), cam.height());
    frame.depth.assign(
        static_cast<std::size_t>(cam.width()) * cam.height(), depth);
    for (int y = 0; y < cam.height(); ++y)
        for (int x = 0; x < cam.width(); ++x)
            frame.color.at(x, y) =
                Vec3f(static_cast<float>(x) / cam.width(),
                      static_cast<float>(y) / cam.height(), 0.5f);
    return frame;
}

void
expectImagesIdentical(const Image &a, const Image &b)
{
    ASSERT_EQ(a.width(), b.width());
    ASSERT_EQ(a.height(), b.height());
    for (int y = 0; y < a.height(); ++y) {
        for (int x = 0; x < a.width(); ++x) {
            const Vec3f pa = a.at(x, y);
            const Vec3f pb = b.at(x, y);
            ASSERT_EQ(pa.x, pb.x) << "(" << x << "," << y << ")";
            ASSERT_EQ(pa.y, pb.y) << "(" << x << "," << y << ")";
            ASSERT_EQ(pa.z, pb.z) << "(" << x << "," << y << ")";
        }
    }
}

SessionFrame
sessionFrameOf(nerf::DepthFrame frame, std::vector<std::uint16_t> ages,
               int tile_size, const std::string &model = "m",
               std::uint64_t epoch = 1)
{
    SessionFrame sf;
    sf.frame = std::make_shared<const nerf::DepthFrame>(std::move(frame));
    sf.model = model;
    sf.epoch = epoch;
    sf.tileSize = tile_size;
    sf.tileAge = std::move(ages);
    return sf;
}

// ---------------------------------------------------------------------------
// image_warp: per-tile coverage and the depth-consistency signal.

TEST(WarpTileStats, IdentityWarpCoversEveryTile)
{
    const nerf::Camera cam = orbitCamera(30.0f, 64);
    const nerf::DepthFrame frame = syntheticFrame(cam);
    const nerf::WarpResult warped = nerf::forwardWarp(frame, cam);
    EXPECT_DOUBLE_EQ(warped.coverage, 1.0);

    const nerf::WarpTileStats tiles = nerf::warpTileStats(warped, 16);
    EXPECT_EQ(tiles.tilesX, 4);
    EXPECT_EQ(tiles.tilesY, 4);
    ASSERT_EQ(tiles.coverage.size(), 16u);
    for (const double c : tiles.coverage)
        EXPECT_DOUBLE_EQ(c, 1.0);
    for (const double c : tiles.conflict)
        EXPECT_DOUBLE_EQ(c, 0.0);

    // The identity warp reproduces the frame and its depth map: the
    // warped frame is itself a valid DepthFrame source.
    for (int y = 1; y < cam.height() - 1; ++y) {
        for (int x = 1; x < cam.width() - 1; ++x) {
            const std::size_t idx =
                static_cast<std::size_t>(y) * cam.width() + x;
            ASSERT_TRUE(warped.covered[idx]);
            EXPECT_NEAR(warped.depth[idx], 1.4f, 1e-3f);
        }
    }
}

TEST(WarpTileStats, MotionUncoversBorderTilesOnly)
{
    const int size = 64;
    const nerf::Camera cam0 = orbitCamera(30.0f, size);
    const nerf::Camera cam1 = orbitCamera(33.0f, size);
    const nerf::DepthFrame frame = syntheticFrame(cam0);
    const nerf::WarpResult warped = nerf::forwardWarp(frame, cam1);

    EXPECT_LT(warped.coverage, 1.0);
    EXPECT_GT(warped.coverage, 0.8);

    const nerf::WarpTileStats tiles = nerf::warpTileStats(warped, 16);
    // Global coverage is the pixel-weighted mean of the per-tile
    // coverages (all tiles are full 16x16 here).
    double mean = 0.0;
    for (const double c : tiles.coverage)
        mean += c;
    mean /= tiles.tiles();
    EXPECT_NEAR(mean, warped.coverage, 1e-9);

    // Interior tiles stay fully covered; the uncovered strip is at the
    // image border in the direction the content moved from.
    int partial = 0;
    for (int ty = 0; ty < tiles.tilesY; ++ty) {
        for (int tx = 0; tx < tiles.tilesX; ++tx) {
            const double c =
                tiles.coverage[static_cast<std::size_t>(ty) * tiles.tilesX + tx];
            if (c < 1.0) {
                ++partial;
                EXPECT_TRUE(tx == 0 || tx == tiles.tilesX - 1 || ty == 0 ||
                            ty == tiles.tilesY - 1)
                    << "interior tile (" << tx << "," << ty << ") uncovered";
            }
        }
    }
    EXPECT_GT(partial, 0);
    EXPECT_LT(partial, tiles.tiles());
}

TEST(WarpTileStats, DepthToleranceFlagsOcclusionFolds)
{
    // Two depth layers seen by a translating camera: parallax slides
    // the near layer across the far one, so splats from well-separated
    // source columns collide at the boundary — a fold the tolerance
    // must flag. The same frame warped to its own camera has only
    // adjacent-pixel collisions (surface gradient), which must not.
    const int size = 32;
    const nerf::Camera cam0({0.5f, 0.5f, -0.5f}, {0.5f, 0.5f, 0.5f},
                            {0.0f, 1.0f, 0.0f}, 45.0f, size, size);
    nerf::DepthFrame frame = syntheticFrame(cam0, 1.0f);
    for (int y = 0; y < size; ++y)
        for (int x = size / 2; x < size; ++x)
            frame.depth[static_cast<std::size_t>(y) * size + x] = 2.0f;

    nerf::WarpOptions tight;
    tight.depthTolerance = 0.1f;

    const nerf::WarpResult still = nerf::forwardWarp(frame, cam0, tight);
    for (const bool c : still.depthConflict)
        EXPECT_FALSE(c) << "a depth step alone is not an occlusion";

    const nerf::Camera cam1({0.65f, 0.5f, -0.5f}, {0.65f, 0.5f, 0.5f},
                            {0.0f, 1.0f, 0.0f}, 45.0f, size, size);
    const nerf::WarpResult moved = nerf::forwardWarp(frame, cam1, tight);
    std::size_t conflicts = 0;
    for (const bool c : moved.depthConflict)
        conflicts += c ? 1 : 0;
    EXPECT_GT(conflicts, 0u) << "the parallax fold must raise conflicts";

    nerf::WarpOptions loose;
    loose.depthTolerance = 10.0f;
    const nerf::WarpResult lax = nerf::forwardWarp(frame, cam1, loose);
    for (const bool c : lax.depthConflict)
        EXPECT_FALSE(c);
}

// ---------------------------------------------------------------------------
// reprojectRender: invalidation, bit-exact patches, PSNR + rays bounds.

class ReprojectRenderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        FaultInjector::instance().reset();
        registry_ = std::make_unique<ModelRegistry>(/*occupancy_resolution=*/8);
        registry_->add("m",
                       std::make_unique<nerf::NerfModel>(tinyModelConfig(), 5));
        entry_ = registry_->find("m");
        rc_.sampler.maxSamplesPerRay = 16;
        cfg_.tileSize = 16;
    }

    void TearDown() override { FaultInjector::instance().reset(); }

    nerf::DepthFrame
    fullRender(const nerf::Camera &cam)
    {
        return nerf::renderDepthFrameTiled(*entry_->model, &entry_->grid, cam,
                                           rc_, nullptr);
    }

    std::unique_ptr<ModelRegistry> registry_;
    const ModelEntry *entry_ = nullptr;
    nerf::TiledRenderConfig rc_;
    ReprojectConfig cfg_;
};

TEST_F(ReprojectRenderTest, OrbitTraceMeetsPsnrAndRayBounds)
{
    const int size = 96;
    const std::uint64_t pixels = static_cast<std::uint64_t>(size) * size;
    nerf::DepthFrame prev = fullRender(orbitCamera(35.0f, size));
    std::vector<std::uint16_t> ages =
        freshTileAges(prev.camera, cfg_.tileSize, cfg_.maxTileAge);

    for (int i = 1; i <= 4; ++i) {
        const nerf::Camera cam = orbitCamera(35.0f + 0.5f * i, size);
        const nerf::DepthFrame truth = fullRender(cam);
        ReprojectOutput out = reprojectRender(
            *entry_->model, &entry_->grid, cam,
            sessionFrameOf(std::move(prev), std::move(ages), cfg_.tileSize),
            rc_, cfg_, nullptr);

        ASSERT_TRUE(out.stats.reprojected) << "frame " << i;
        EXPECT_GT(out.stats.tilesRerendered, 0);
        EXPECT_LT(out.stats.tilesRerendered, out.stats.tilesTotal);
        // Acceptance bound: each reprojected frame marches <= 30 % of
        // the rays a full render would.
        EXPECT_LE(out.stats.raysRendered, pixels * 3 / 10) << "frame " << i;
        EXPECT_EQ(out.stats.raysRendered + out.stats.raysSaved, pixels);
        // ... at >= 30 dB against the full render.
        const double db = psnr(out.frame.color, truth.color);
        EXPECT_GE(db, 30.0) << "frame " << i;

        // Re-rendered tiles are bit-identical to the full render.
        const int tiles_x = (size + cfg_.tileSize - 1) / cfg_.tileSize;
        for (std::size_t t = 0; t < out.tileAge.size(); ++t) {
            if (out.tileAge[t] != 0)
                continue;
            const int tx = static_cast<int>(t) % tiles_x;
            const int ty = static_cast<int>(t) / tiles_x;
            for (int y = ty * cfg_.tileSize;
                 y < std::min((ty + 1) * cfg_.tileSize, size); ++y) {
                for (int x = tx * cfg_.tileSize;
                     x < std::min((tx + 1) * cfg_.tileSize, size); ++x) {
                    const Vec3f a = out.frame.color.at(x, y);
                    const Vec3f b = truth.color.at(x, y);
                    ASSERT_EQ(a.x, b.x) << "(" << x << "," << y << ")";
                    ASSERT_EQ(a.y, b.y);
                    ASSERT_EQ(a.z, b.z);
                }
            }
        }

        prev = std::move(out.frame);
        ages = std::move(out.tileAge);
    }
}

TEST_F(ReprojectRenderTest, AgedTilesAreRefreshedRoundRobin)
{
    const int size = 64;
    const nerf::Camera cam = orbitCamera(35.0f, size);
    nerf::DepthFrame prev = fullRender(cam);
    cfg_.maxTileAge = 3;

    // Same camera every frame: no motion, so the *only* invalidation
    // left is age. Every tile must be re-rendered within maxTileAge
    // frames, and ages never reach the cap.
    std::vector<std::uint16_t> ages =
        freshTileAges(cam, cfg_.tileSize, cfg_.maxTileAge);
    int refreshed_total = 0;
    for (int i = 0; i < 4; ++i) {
        ReprojectOutput out = reprojectRender(
            *entry_->model, &entry_->grid, cam,
            sessionFrameOf(std::move(prev), std::move(ages), cfg_.tileSize),
            rc_, cfg_, nullptr);
        ASSERT_TRUE(out.stats.reprojected);
        for (const std::uint16_t age : out.tileAge)
            EXPECT_LT(age, cfg_.maxTileAge);
        refreshed_total += out.stats.tilesRerendered;
        prev = std::move(out.frame);
        ages = std::move(out.tileAge);
    }
    EXPECT_GT(refreshed_total, 0);
}

TEST_F(ReprojectRenderTest, ShapeMismatchFallsBackToFullRender)
{
    const int size = 64;
    const nerf::Camera cam = orbitCamera(35.0f, size);
    nerf::DepthFrame seed = fullRender(orbitCamera(34.5f, size));
    // Age grid deliberately shaped for a different tile size.
    ReprojectOutput out = reprojectRender(
        *entry_->model, &entry_->grid, cam,
        sessionFrameOf(std::move(seed), std::vector<std::uint16_t>(4, 0),
                       /*tile_size=*/32),
        rc_, cfg_, nullptr);
    EXPECT_FALSE(out.stats.reprojected);
    EXPECT_STREQ(out.stats.fallback, "shape");
    expectImagesIdentical(out.frame.color, fullRender(cam).color);
}

TEST_F(ReprojectRenderTest, ChaosTileFaultDegradesToFullRenderNotHoles)
{
    const int size = 64;
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec(
        "serve.reproject.tiles=always"));

    const nerf::Camera cam = orbitCamera(35.5f, size);
    nerf::DepthFrame seed = fullRender(orbitCamera(35.0f, size));
    ReprojectOutput out = reprojectRender(
        *entry_->model, &entry_->grid, cam,
        sessionFrameOf(std::move(seed),
                       freshTileAges(cam, cfg_.tileSize, cfg_.maxTileAge),
                       cfg_.tileSize),
        rc_, cfg_, nullptr);

    // The faulted tile pass must degrade to a bit-exact full render —
    // never serve the warped frame with unpatched holes.
    EXPECT_FALSE(out.stats.reprojected);
    EXPECT_STREQ(out.stats.fallback, "tile_fault");
    EXPECT_EQ(out.stats.raysRendered,
              static_cast<std::uint64_t>(size) * size);
    expectImagesIdentical(out.frame.color, fullRender(cam).color);
}

// ---------------------------------------------------------------------------
// SessionStore: TTL, LRU memory budget, classified misses.

TEST(SessionStore, EvictsLeastRecentlyUsedUnderMemoryBudget)
{
    const nerf::Camera cam = orbitCamera(30.0f, 32);
    SessionFrame a = sessionFrameOf(syntheticFrame(cam), {}, 16);
    const std::size_t per_frame = SessionStore::frameBytes(a);

    SessionStoreConfig cfg;
    cfg.maxBytes = per_frame * 2; // room for two frames, not three
    SessionStore store(cfg);

    const auto t0 = SessionStore::Clock::now();
    store.put("a", std::move(a), t0);
    store.put("b", sessionFrameOf(syntheticFrame(cam), {}, 16), t0);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_LE(store.bytes(), cfg.maxBytes);

    // Touch "a" so "b" is the LRU victim of the third insert.
    EXPECT_TRUE(store.get("a", "m", 1, t0).has_value());
    store.put("c", sessionFrameOf(syntheticFrame(cam), {}, 16), t0);

    EXPECT_EQ(store.size(), 2u);
    EXPECT_LE(store.bytes(), cfg.maxBytes);
    EXPECT_EQ(store.evictions(), 1u);
    EXPECT_TRUE(store.get("a", "m", 1, t0).has_value());
    EXPECT_TRUE(store.get("c", "m", 1, t0).has_value());
    EXPECT_FALSE(store.get("b", "m", 1, t0).has_value());
    EXPECT_EQ(store.missesAbsent(), 1u);
}

TEST(SessionStore, TtlExpiresIdleSessions)
{
    SessionStoreConfig cfg;
    cfg.ttlSeconds = 1.0;
    SessionStore store(cfg);

    const nerf::Camera cam = orbitCamera(30.0f, 16);
    const auto t0 = SessionStore::Clock::now();
    store.put("s", sessionFrameOf(syntheticFrame(cam), {}, 16), t0);

    const auto fresh = t0 + std::chrono::milliseconds(500);
    EXPECT_TRUE(store.get("s", "m", 1, fresh).has_value());

    const auto late = t0 + std::chrono::milliseconds(1600);
    EXPECT_FALSE(store.get("s", "m", 1, late).has_value());
    EXPECT_EQ(store.missesExpired(), 1u);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.bytes(), 0u);
}

TEST(SessionStore, MismatchedProvenanceIsAStaleMiss)
{
    SessionStore store(SessionStoreConfig{});
    const nerf::Camera cam = orbitCamera(30.0f, 16);
    const auto t0 = SessionStore::Clock::now();
    store.put("s", sessionFrameOf(syntheticFrame(cam), {}, 16, "m", 1), t0);

    // Same model, newer epoch: a hot-swap happened.
    EXPECT_FALSE(store.get("s", "m", 2, t0).has_value());
    EXPECT_EQ(store.missesStale(), 1u);
    // The stale entry was dropped, so the next lookup is an absent miss.
    EXPECT_FALSE(store.get("s", "m", 2, t0).has_value());
    EXPECT_EQ(store.missesAbsent(), 1u);
}

// ---------------------------------------------------------------------------
// RenderServer integration: cold-cache bit-exactness, the accelerate
// rung, and stale-epoch invalidation across a hot-swap.

class ReprojectServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        FaultInjector::instance().reset();
        registry_ = std::make_unique<ModelRegistry>(/*occupancy_resolution=*/8);
        registry_->add("m",
                       std::make_unique<nerf::NerfModel>(tinyModelConfig(), 5));
        sc_.renderThreads = 2;
        sc_.render.sampler.maxSamplesPerRay = 16;
    }

    void TearDown() override { FaultInjector::instance().reset(); }

    RenderResponse
    ask(RenderServer &server, float azim, const std::string &session,
        int size = 64)
    {
        RenderRequest req;
        req.model = "m";
        req.camera = orbitCamera(azim, size);
        req.session = session;
        return server.submit(req).get();
    }

    std::unique_ptr<ModelRegistry> registry_;
    ServeConfig sc_;
};

TEST_F(ReprojectServerTest, ColdCacheIsBitIdenticalToFullRender)
{
    RenderServer server(*registry_, sc_);
    const RenderResponse r = ask(server, 35.0f, "stream-1");
    EXPECT_EQ(r.outcome, Outcome::renderedFull);

    const ModelEntry *entry = registry_->find("m");
    const Image direct = nerf::renderImageTiled(
        *entry->model, &entry->grid, orbitCamera(35.0f, 64), sc_.render, nullptr);
    expectImagesIdentical(r.image, direct);
    EXPECT_EQ(server.stats().sessionMisses(), 1u);
    EXPECT_EQ(server.sessions().size(), 1u);
}

TEST_F(ReprojectServerTest, DisabledReprojectionAlwaysFullRenders)
{
    sc_.reproject.enabled = false;
    RenderServer server(*registry_, sc_);
    EXPECT_EQ(ask(server, 35.0f, "s").outcome, Outcome::renderedFull);
    const RenderResponse r = ask(server, 35.5f, "s");
    EXPECT_EQ(r.outcome, Outcome::renderedFull);

    const ModelEntry *entry = registry_->find("m");
    const Image direct = nerf::renderImageTiled(
        *entry->model, &entry->grid, orbitCamera(35.5f, 64), sc_.render, nullptr);
    expectImagesIdentical(r.image, direct);
    EXPECT_EQ(server.sessions().size(), 0u);
}

TEST_F(ReprojectServerTest, WarmSessionServesByReprojection)
{
    RenderServer server(*registry_, sc_);
    EXPECT_EQ(ask(server, 35.0f, "s").outcome, Outcome::renderedFull);

    const RenderResponse r = ask(server, 35.5f, "s");
    EXPECT_EQ(r.outcome, Outcome::renderedReproject);
    EXPECT_EQ(server.stats().sessionHits(), 1u);
    EXPECT_GT(server.stats().raysSaved(), 0u);
    EXPECT_EQ(server.stats().count(Outcome::renderedReproject), 1u);

    // Distinct sessions do not share frames.
    EXPECT_EQ(ask(server, 35.5f, "other").outcome, Outcome::renderedFull);
    EXPECT_EQ(server.sessions().size(), 2u);
}

TEST_F(ReprojectServerTest, HotSwapInvalidatesSessionsViaEpoch)
{
    RenderServer server(*registry_, sc_);
    EXPECT_EQ(ask(server, 35.0f, "s").outcome, Outcome::renderedFull);
    EXPECT_EQ(ask(server, 35.5f, "s").outcome, Outcome::renderedReproject);

    // Hot-swap: a new model replaces "m". The cached session frame
    // shows the *old* scene; the epoch mismatch must force a full
    // render, never a warp of stale content.
    registry_->add("m", std::make_unique<nerf::NerfModel>(tinyModelConfig(), 99));
    const RenderResponse after = ask(server, 36.0f, "s");
    EXPECT_EQ(after.outcome, Outcome::renderedFull);
    EXPECT_GE(server.sessions().missesStale(), 1u);

    const ModelEntry *entry = registry_->find("m");
    ASSERT_EQ(entry->epoch, 2u);
    const Image direct = nerf::renderImageTiled(
        *entry->model, &entry->grid, orbitCamera(36.0f, 64), sc_.render, nullptr);
    expectImagesIdentical(after.image, direct);

    // The stream recovers: the re-seeded session reprojects again.
    EXPECT_EQ(ask(server, 36.5f, "s").outcome, Outcome::renderedReproject);
}

TEST_F(ReprojectServerTest, ChaosTileFaultServesFullFrameThroughServer)
{
    RenderServer server(*registry_, sc_);
    EXPECT_EQ(ask(server, 35.0f, "s").outcome, Outcome::renderedFull);

    ASSERT_TRUE(FaultInjector::instance().configureFromSpec(
        "serve.reproject.tiles=always"));
    const RenderResponse r = ask(server, 35.5f, "s");
    // The session hit was taken, the tile pass faulted, and the request
    // still terminated with a complete full-fidelity frame.
    EXPECT_EQ(r.outcome, Outcome::renderedFull);
    EXPECT_EQ(server.stats().sessionHits(), 1u);
    EXPECT_EQ(server.stats().reprojectFallbacks(), 1u);

    const ModelEntry *entry = registry_->find("m");
    const Image direct = nerf::renderImageTiled(
        *entry->model, &entry->grid, orbitCamera(35.5f, 64), sc_.render, nullptr);
    expectImagesIdentical(r.image, direct);
}

} // namespace
} // namespace fusion3d::serve
