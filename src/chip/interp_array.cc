#include "chip/interp_array.h"

#include <algorithm>
#include <cmath>

#include "chip/fiem.h"

namespace fusion3d::chip
{

QuantizedWeights
quantizeWeights(const std::array<float, 8> &weights)
{
    QuantizedWeights q;
    for (std::size_t i = 0; i < 8; ++i) {
        const float w = std::clamp(weights[i], 0.0f, 1.0f);
        q.w[i] = static_cast<std::uint8_t>(std::lround(w * 255.0f));
    }
    return q;
}

float
InterpArray::forwardMacTree(const std::array<Half, 8> &features,
                            const QuantizedWeights &weights)
{
    // Eight FIEM lanes followed by a three-level adder tree. The FIEM
    // outputs are exact, so accumulation order only matters at float
    // rounding granularity; we mirror the tree order of the hardware.
    float lane[8];
    for (std::size_t i = 0; i < 8; ++i)
        lane[i] = fiemMultiply(features[i], static_cast<std::int32_t>(weights.w[i]));
    const float l0 = (lane[0] + lane[1]) + (lane[2] + lane[3]);
    const float l1 = (lane[4] + lane[5]) + (lane[6] + lane[7]);
    return (l0 + l1) * QuantizedWeights::kScale;
}

std::array<float, 8>
InterpArray::backwardScatter(Half dout, const QuantizedWeights &weights)
{
    std::array<float, 8> out{};
    for (std::size_t i = 0; i < 8; ++i) {
        out[i] = fiemMultiply(dout, static_cast<std::int32_t>(weights.w[i])) *
                 QuantizedWeights::kScale;
    }
    return out;
}

} // namespace fusion3d::chip
