#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "obs/flight_recorder.h"

namespace fusion3d
{

namespace
{

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

/** Serializes every emitted line; warn()/inform() no longer interleave
 *  under the ThreadPool. */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("FUSION3D_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::info;
    if (std::strcmp(env, "silent") == 0 || std::strcmp(env, "none") == 0 ||
        std::strcmp(env, "error") == 0)
        return LogLevel::silent;
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "warning") == 0)
        return LogLevel::warning;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::info;
    std::fprintf(stderr,
                 "warn: FUSION3D_LOG_LEVEL '%s' not one of "
                 "silent|warn|info; using info\n",
                 env);
    return LogLevel::info;
}

std::atomic<LogLevel> &
levelHolder()
{
    static std::atomic<LogLevel> level{levelFromEnv()};
    return level;
}

bool
timestampsEnabled()
{
    static const bool enabled = []() {
        const char *env = std::getenv("FUSION3D_LOG_TIMESTAMPS");
        return env && *env && std::strcmp(env, "0") != 0;
    }();
    return enabled;
}

/** Write "prefix: message\n" to @p out under the log mutex, optionally
 *  timestamped with seconds since logging start. */
void
emit(std::FILE *out, const char *prefix, const std::string &message)
{
    static const auto epoch = std::chrono::steady_clock::now();
    // Every emitted line also lands in the flight recorder ring, so a
    // black-box snapshot carries the log context around a failure.
    obs::FlightRecorder::instance().recordLog(prefix, message.c_str());
    std::lock_guard<std::mutex> lock(logMutex());
    if (timestampsEnabled()) {
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          epoch)
                .count();
        std::fprintf(out, "[%9.3f] %s: %s\n", seconds, prefix, message.c_str());
    } else {
        std::fprintf(out, "%s: %s\n", prefix, message.c_str());
    }
    std::fflush(out);
}

} // namespace

LogLevel
logLevel()
{
    return levelHolder().load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    levelHolder().store(level, std::memory_order_relaxed);
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    emit(stderr, "panic", s);
    // Last act before aborting: preserve the recent-history ring (a
    // file is only written when a dump directory is configured).
    obs::FlightRecorder::instance().triggerDump("panic");
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    emit(stderr, "fatal", s);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() < LogLevel::warning)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    emit(stderr, "warn", s);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::info)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    emit(stdout, "info", s);
}

} // namespace fusion3d
