/**
 * @file
 * Registry of deployed models, scaled to a *fleet*. Owns the
 * deserialized `.f3dm` radiance fields keyed by name — any backend
 * behind the ServeableField interface: hash-grid, FreqNeRF, TensoRF —
 * each paired with an occupancy gate rebuilt from its own density
 * field at registration time, after which an entry is immutable, so
 * render workers share it without locks. Every fleet mechanism below
 * (eviction, reload, breaker, hot-swap) is backend-agnostic: it sees
 * only the field interface and the artifact path.
 *
 * Fleet mechanics on top of the original always-resident map:
 *
 *  - **Budgeted eviction.** An optional memory budget
 *    (RegistryConfig::memoryBudgetBytes) bounds the bytes of resident
 *    models. Registering a model past the budget LRU-evicts idle
 *    artifact-backed entries (least recently acquired first). Entries
 *    are handed out as shared_ptr, so an in-flight render *pins* its
 *    model: a pinned entry is never evicted, and a replaced or evicted
 *    entry drains naturally when its last pin drops. Models added
 *    in-memory (add()) have no artifact to reload from and are never
 *    evicted. Eviction bumps the name's deploy epoch, so cached
 *    artifacts derived from the model (session frames in the
 *    reprojection cache) stale-miss instead of serving a ghost.
 *
 *  - **Reload-on-demand.** acquireOrReload() transparently reloads an
 *    evicted model from its remembered artifact path, riding the same
 *    retry + circuit-breaker path as an explicit deploy: the caller
 *    *stalls* (bounded by the retry budget) rather than fails, and
 *    concurrent requests for the same evicted model wait on one
 *    loader instead of thundering into storage.
 *
 *  - **Atomic hot-swap.** swap() replaces a live model between
 *    batches: the new version loads and CRC-verifies off to the side
 *    (no lock held), then a pointer swap under the lock publishes it.
 *    In-flight renders keep their pinned old version — a request's
 *    tiles are always all-old or all-new, never torn — and the old
 *    version drains when its pins drop. A failed swap (bad artifact,
 *    injected fault, open breaker) never touches the live entry.
 *
 * Deploy-from-file is hardened for lossy storage: addFromFile retries
 * failed loads with capped exponential backoff, and a per-model circuit
 * breaker stops hammering a broken artifact after K consecutive
 * failures, half-opening for a single probe once its cooldown elapses.
 * Deploy attempts, retries, breaker transitions, evictions, reloads,
 * and hot-swaps are counted and exported through obs::MetricsRegistry
 * ("serve.registry.*"). The "serve.load.io" fault point injects load
 * failures for chaos testing; hot-swaps and evictions emit trace
 * instants that also land in the flight recorder.
 */

#ifndef FUSION3D_SERVE_MODEL_REGISTRY_H_
#define FUSION3D_SERVE_MODEL_REGISTRY_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "nerf/field.h"
#include "nerf/nerf_model.h"
#include "nerf/occupancy_grid.h"
#include "nerf/serialize.h"
#include "obs/metrics.h"

namespace fusion3d::serve
{

/** One deployed model: a backend-polymorphic serveable field plus its
 *  inference occupancy gate. The member keeps its historical name
 *  (`model`) — render call sites pass `*entry->model` to the tiled
 *  renderer either way. */
struct ModelEntry
{
    std::string name;
    std::unique_ptr<nerf::ServeableField> model;
    nerf::OccupancyGrid grid;
    /** Deploy generation of this name: 1 on first add, bumped by every
     *  replacement (hot-swap), eviction, and removal. Cached artifacts
     *  derived from a model — session frames in the reprojection cache
     *  above all — carry the epoch and go stale when it moves. */
    std::uint64_t epoch = 0;
    /** Approximate resident bytes (weights + gate); the unit of the
     *  registry's memory-budget accounting. */
    std::size_t bytes = 0;
    /** Artifact this entry was deserialized from; empty for in-memory
     *  add()s. Only artifact-backed entries are evictable, because
     *  only they can be reloaded on demand. */
    std::string sourcePath;
    /** Numeric format this entry serves in (RegistryConfig::quantMode
     *  when the backend supports it, else fp32). */
    QuantMode quant = QuantMode::fp32;

    ModelEntry(std::string n, std::unique_ptr<nerf::ServeableField> m,
               int grid_res, float grid_threshold)
        : name(std::move(n)), model(std::move(m)), grid(grid_res, grid_threshold)
    {
    }
};

/** A pinned, shareable reference to a resident model. Holding it keeps
 *  the entry alive across eviction, hot-swap, and removal. */
using ModelHandle = std::shared_ptr<const ModelEntry>;

/** Per-model deploy circuit-breaker state. */
enum class BreakerState
{
    closed,   ///< deploys flow normally
    open,     ///< deploys are rejected until the cooldown elapses
    halfOpen, ///< one probe deploy is allowed through
};

/** Human-readable name of @p state. */
const char *breakerStateName(BreakerState state);

/** What acquireOrReload() resolved. */
struct AcquireResult
{
    /** The pinned entry; null when the name is unknown or the reload
     *  failed (status says why). */
    ModelHandle entry;
    /** True when the name currently *serves* (resident, or evicted
     *  with an artifact to reload): a null entry with known=true is an
     *  internal failure (the reload failed), with known=false an
     *  unknown model (never registered, or removed). */
    bool known = false;
    /** Load status of the reload when one ran (ok for a resident hit). */
    nerf::LoadStatus status = nerf::LoadStatus::ok;
    /** True when this call (or a concurrent one it waited on)
     *  reloaded the model from its artifact. */
    bool reloaded = false;
};

/** Registry configuration: gate parameters plus deploy hardening. */
struct RegistryConfig
{
    /** Gate resolution of registered models. */
    int occupancyResolution = 48;
    /** Density above which a gate cell is live. */
    float occupancyThreshold = 0.01f;
    /** Load attempts per addFromFile call (>= 1). */
    int loadMaxAttempts = 3;
    /** Delay before the first retry; doubles (multiplier) per retry. */
    double backoffInitialMs = 1.0;
    double backoffMultiplier = 2.0;
    /** Backoff cap. */
    double backoffMaxMs = 50.0;
    /** Consecutive failed addFromFile calls (per model) that trip the
     *  breaker open. */
    int breakerThreshold = 3;
    /** Open time before the breaker half-opens for one probe. */
    double breakerCooldownMs = 250.0;
    /**
     * Memory budget over resident models; 0 = unlimited (no eviction,
     * the original always-resident behaviour). When registering a
     * model pushes resident bytes past the budget, idle artifact-backed
     * entries are LRU-evicted until the registry fits again. Pinned
     * entries (in-flight renders) and the most recently used entry are
     * never evicted, so accounting can transiently exceed the budget
     * by exactly the pinned set.
     */
    std::size_t memoryBudgetBytes = 0;
    /**
     * Numeric format registered fields serve in. Non-fp32 modes build
     * packed weight images at deploy time and release the fp32 masters
     * (fp16 ~2x, int8 ~4x lower resident bytes — so the same budget
     * holds proportionally more of the fleet), applied *before* the
     * occupancy-gate rebuild so the gate matches the served weights.
     * Backends without quantization support keep serving fp32.
     */
    QuantMode quantMode = QuantMode::fp32;
};

/** Thread-safe name → model map; entries are immutable once added. */
class ModelRegistry
{
  public:
    /** Gate-parameter shorthand for RegistryConfig defaults. */
    explicit ModelRegistry(int occupancy_resolution = 48,
                           float occupancy_threshold = 0.01f);

    explicit ModelRegistry(const RegistryConfig &cfg);

    ~ModelRegistry();

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Register @p model under @p name, building its occupancy gate
     * from the model's density field. Replaces an existing entry of
     * the same name (the old entry drains with its pins). In-memory
     * entries are exempt from eviction; adding one may still evict
     * *other* artifact-backed entries to make room.
     * @return the registered entry (valid at least until the next
     *         registry mutation; with a budget configured, prefer
     *         acquire() for anything held across calls).
     */
    const ModelEntry *add(const std::string &name,
                          std::unique_ptr<nerf::NerfModel> model);

    /** Backend-polymorphic add(): register any serveable field (e.g. a
     *  TensorfServeField or FreqServeField) under @p name. */
    const ModelEntry *add(const std::string &name,
                          std::unique_ptr<nerf::ServeableField> field);

    /**
     * Deserialize a `.f3dm` artifact and register it, retrying with
     * capped exponential backoff. Repeated failures trip the model's
     * circuit breaker; while it is open, calls return the failure
     * immediately without touching storage. On success the artifact
     * path is remembered, making the entry evictable + reloadable.
     * @return LoadStatus::ok on success (for a breaker-open reject,
     *         LoadStatus::ioError; breakerState() tells the two apart).
     */
    nerf::LoadStatus addFromFile(const std::string &name, const std::string &path);

    /**
     * Hot-swap: atomically replace the live model @p name with the
     * artifact at @p path. The new version loads and CRC-verifies off
     * to the side (retry + breaker apply), then a pointer swap under
     * the lock publishes it; in-flight renders finish on their pinned
     * old version, which drains when the pins drop. On any failure the
     * old version keeps serving untouched. Emits a "hot_swap" trace
     * instant (which also lands in the flight recorder).
     * @return LoadStatus::ok on success; ioError when @p name is not
     *         currently deployed (never registered, or removed).
     */
    nerf::LoadStatus swap(const std::string &name, const std::string &path);

    /**
     * Pin and return the resident entry named @p name (refreshing its
     * LRU position), or null when absent/evicted. Never loads.
     */
    ModelHandle acquire(const std::string &name);

    /**
     * Pin and return the entry named @p name, transparently reloading
     * it from its remembered artifact if it was evicted. A reload
     * rides the retry + circuit-breaker path, so the caller stalls
     * (bounded by the retry budget) rather than fails; concurrent
     * callers for the same evicted model wait on the one loader. See
     * AcquireResult for the failure taxonomy.
     */
    AcquireResult acquireOrReload(const std::string &name);

    /**
     * Unload @p name entirely: the resident entry (if any) is dropped
     * — in-flight pins drain it — the artifact path is forgotten, and
     * the deploy epoch is bumped so dependent caches stale-miss.
     * Subsequent requests resolve as unknown-model.
     * @return true when the name was registered.
     */
    bool removeModel(const std::string &name);

    /** @return the resident entry named @p name, or nullptr. Does not
     *  refresh LRU state. With a memory budget configured the pointer
     *  can dangle after any later registry mutation — use acquire(). */
    const ModelEntry *find(const std::string &name) const;

    /** Resident model count (evicted models do not count). */
    std::size_t size() const;

    /** Names of all resident models, sorted. */
    std::vector<std::string> names() const;

    /** Deploy-breaker state of @p name (closed if never deployed). */
    BreakerState breakerState(const std::string &name) const;

    /** Current deploy epoch of @p name (0 if never registered). */
    std::uint64_t epoch(const std::string &name) const;

    const RegistryConfig &config() const { return cfg_; }

    /** Bytes of resident models counted against the budget. */
    std::size_t residentBytes() const;

    // Deploy statistics (also exported as serve.registry.* metrics).
    std::uint64_t loadsSucceeded() const;
    std::uint64_t loadsFailed() const;
    std::uint64_t loadRetries() const;
    std::uint64_t breakerTrips() const;
    std::uint64_t breakerOpenRejects() const;
    /** Budget-pressure LRU evictions. */
    std::uint64_t evictions() const;
    /** On-demand reloads of evicted models (acquireOrReload). */
    std::uint64_t reloads() const;
    /** Successful hot-swaps. */
    std::uint64_t swaps() const;
    /** acquire()/acquireOrReload() calls answered by a resident entry. */
    std::uint64_t acquireHits() const;

  private:
    struct Breaker
    {
        BreakerState state = BreakerState::closed;
        int consecutiveFailures = 0;
        std::uint64_t trips = 0;
        std::chrono::steady_clock::time_point openedAt{};
    };

    struct Slot
    {
        std::shared_ptr<ModelEntry> entry;
        /** Position in lru_ (front = most recently acquired). */
        std::list<std::string>::iterator lruPos;
    };

    /** Shared body of add()/addFromFile(): build the entry (gate +
     *  byte accounting) outside the lock, publish it under the lock,
     *  then evict to budget. Empty @p source_path = in-memory deploy
     *  (forgets any remembered artifact for the name). */
    const ModelEntry *addInternal(const std::string &name,
                                  std::unique_ptr<nerf::ServeableField> field,
                                  const std::string &source_path);

    /** Evict idle artifact-backed LRU entries until resident bytes fit
     *  the budget (or nothing evictable remains). Caller holds mutex_. */
    void evictToBudgetLocked();
    void touchLocked(Slot &slot, const std::string &name);
    void collect(obs::MetricSink &sink) const;

    mutable std::mutex mutex_;
    RegistryConfig cfg_;
    std::map<std::string, Slot> entries_;
    /** Front = most recently used resident name. */
    std::list<std::string> lru_;
    /** Last known artifact path per name; survives eviction (that is
     *  the point) and replacement, dies with removeModel(). */
    std::map<std::string, std::string> source_paths_;
    /** Names with an acquireOrReload() load in flight; concurrent
     *  acquirers wait on loader_cv_ instead of duplicating the load. */
    std::set<std::string> loading_;
    std::condition_variable loader_cv_;
    std::map<std::string, Breaker> breakers_;
    /** Deploy generations per name (survives entry replacement). */
    std::map<std::string, std::uint64_t> epochs_;

    std::size_t resident_bytes_ = 0;
    std::uint64_t loads_ok_ = 0;
    std::uint64_t loads_failed_ = 0;
    std::uint64_t load_retries_ = 0;
    std::uint64_t breaker_trips_ = 0;
    std::uint64_t breaker_rejects_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t reloads_ = 0;
    std::uint64_t swaps_ = 0;
    std::uint64_t acquire_hits_ = 0;

    std::string collector_name_;
};

} // namespace fusion3d::serve

#endif // FUSION3D_SERVE_MODEL_REGISTRY_H_
