/**
 * @file
 * Shared helpers for the reproduction benches: scene-bootstrapped
 * pipelines, content-box analysis for the Technique-T1 ablation, and
 * table formatting. Each bench binary regenerates one table or figure
 * of the paper (see DESIGN.md's per-experiment index).
 */

#ifndef FUSION3D_BENCH_BENCH_UTIL_H_
#define FUSION3D_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/aabb.h"
#include "nerf/moe.h"
#include "nerf/pipeline.h"
#include "scenes/factory.h"
#include "scenes/scene.h"

namespace fusion3d::bench
{

/** Default model/pipeline configuration used across benches. */
inline nerf::PipelineConfig
defaultPipeline()
{
    nerf::PipelineConfig pc;
    pc.model.grid.levels = 8;
    pc.model.grid.featuresPerLevel = 2;
    pc.model.grid.log2TableSize = 14;
    pc.model.grid.baseResolution = 16;
    pc.model.grid.maxResolution = 128;
    pc.model.densityHidden = 32;
    pc.model.colorHidden = 32;
    pc.model.geoFeatures = 15;
    pc.model.shDegree = 3;
    pc.sampler.maxSamplesPerRay = 64;
    pc.occupancyResolution = 48;
    return pc;
}

/**
 * Build a pipeline whose occupancy gate reflects the scene's true
 * geometry. Workload-characterization benches use this instead of a
 * full training run: a converged NeRF's occupancy grid tracks the
 * scene's occupied cells, and every accelerator-relevant statistic
 * (candidates, valid samples, hash accesses) follows from the gate.
 */
inline std::unique_ptr<nerf::NerfPipeline>
pipelineForScene(const scenes::Scene &scene,
                 const nerf::PipelineConfig &pc = defaultPipeline())
{
    auto pipe = std::make_unique<nerf::NerfPipeline>(pc);
    Pcg32 rng(2024, 17);
    pipe->grid().update([&scene](const Vec3f &p) { return scene.density(p); }, rng,
                        /*decay=*/0.0f);
    return pipe;
}

/**
 * Bootstrap every expert gate of a MoE model from the scene's true
 * geometry, intersected with the expert's spatial region (Level-1
 * tiling). See pipelineForScene() for why this stands in for training.
 */
inline void
bootstrapMoeGates(nerf::MoeNerf &moe, const scenes::Scene &scene)
{
    Pcg32 rng(2025, 19);
    for (int k = 0; k < moe.numExperts(); ++k) {
        moe.expert(k).grid().update(
            [&scene](const Vec3f &p) { return scene.density(p); }, rng, 0.0f);
        moe.expert(k).grid().maskRegion(
            [&moe, k](const Vec3f &p) { return moe.regionOf(p) == k; });
    }
}

/** Tight bounding box of the scene's occupied space (the "model
 *  region" Technique T1-1 normalizes away). */
inline Aabb
contentBox(const scenes::Scene &scene, int res = 32, float threshold = 0.01f)
{
    Aabb box(Vec3f(1.0f), Vec3f(0.0f)); // inverted; expand() fixes it
    const float inv = 1.0f / static_cast<float>(res);
    bool any = false;
    for (int z = 0; z < res; ++z) {
        for (int y = 0; y < res; ++y) {
            for (int x = 0; x < res; ++x) {
                const Vec3f p{(x + 0.5f) * inv, (y + 0.5f) * inv, (z + 0.5f) * inv};
                if (scene.density(p) > threshold) {
                    box.expand(compMax(p - Vec3f(inv), Vec3f(0.0f)));
                    box.expand(compMin(p + Vec3f(inv), Vec3f(1.0f)));
                    any = true;
                }
            }
        }
    }
    if (!any)
        return Aabb::unitCube();
    return box;
}

/** Re-express a world-space ray in the normalized frame of @p box. */
inline Ray
normalizeRay(const Ray &ray, const Aabb &box)
{
    const Vec3f e = box.extent();
    const Vec3f o = (ray.origin - box.lo) / e;
    const Vec3f d = ray.dir / e;
    return Ray(o, d);
}

/** Print a horizontal rule sized for a bench table. */
inline void
rule(int width = 94)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a bench header banner. */
inline void
banner(const std::string &title)
{
    rule();
    std::printf("%s\n", title.c_str());
    rule();
}

/** Format helper: "N/S" for unsupported metrics. */
inline std::string
fmtOpt(bool present, double value, const char *fmt = "%.1f")
{
    if (!present)
        return "N/S";
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, value);
    return buf;
}

} // namespace fusion3d::bench

#endif // FUSION3D_BENCH_BENCH_UTIL_H_
