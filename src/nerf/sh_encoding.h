/**
 * @file
 * Real spherical-harmonics encoding of view directions, as used by
 * Instant-NGP's color network input (up to degree 4, 16 coefficients).
 */

#ifndef FUSION3D_NERF_SH_ENCODING_H_
#define FUSION3D_NERF_SH_ENCODING_H_

#include <span>

#include "common/vec.h"

namespace fusion3d::nerf
{

/** Number of SH coefficients for @p degree bands (degree in 1..4). */
constexpr int
shCoefficientCount(int degree)
{
    return degree * degree;
}

/**
 * Evaluate the first @p degree bands of real spherical harmonics at unit
 * direction @p d, writing degree^2 values into @p out.
 */
void shEncode(const Vec3f &d, int degree, std::span<float> out);

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_SH_ENCODING_H_
