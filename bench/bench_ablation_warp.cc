/**
 * @file
 * Image-warping ablation (the MetaVRain [13] technique, Table III
 * footnote 1): quantify when previous-frame reuse sustains real-time
 * rates and when it does not. Renders a frame with the NeRF pipeline,
 * extracts the composited depth map, warps it across increasing camera
 * motion, and reports coverage, warp quality, and the effective FPS of
 * warp-assisted rendering against the Fusion-3D full re-render.
 */

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "chip/chip.h"
#include "nerf/image_warp.h"
#include "nerf/renderer.h"

using namespace fusion3d;

namespace
{

/** Render a frame and its depth map with the functional pipeline. */
nerf::DepthFrame
renderDepthFrame(nerf::NerfPipeline &pipe, const nerf::Camera &cam, Pcg32 &rng)
{
    nerf::DepthFrame frame;
    frame.camera = cam;
    frame.color = Image(cam.width(), cam.height());
    frame.depth.assign(static_cast<std::size_t>(cam.width()) * cam.height(), 0.0f);

    std::vector<nerf::RaySample> samples;
    std::vector<float> sigmas, dts, ts;
    for (int y = 0; y < cam.height(); ++y) {
        for (int x = 0; x < cam.width(); ++x) {
            const Ray ray = cam.rayForPixel(x, y);
            const nerf::RayEval ev = pipe.traceRay(ray, rng, /*record=*/true);
            frame.color.at(x, y) = clamp(ev.color, 0.0f, 1.0f);
            // Depth from the recorded tape.
            // traceRay(record=true) leaves the tape in the pipeline but
            // does not expose it; recompute from a second sampling pass
            // kept simple: reuse firstHitT as a depth proxy blended with
            // the far bound by the remaining transmittance.
            const float t_hit = std::isfinite(ev.firstHitT) ? ev.firstHitT : 2.5f;
            frame.depth[static_cast<std::size_t>(y) * cam.width() + x] =
                t_hit * (1.0f - ev.transmittance) + 2.5f * ev.transmittance;
        }
    }
    return frame;
}

} // namespace

int
main(int argc, char **argv)
{
    const int size = argc > 1 ? std::atoi(argv[1]) : 96;
    bench::banner("Image-warping ablation (MetaVRain-style frame reuse)");

    const auto scene = scenes::makeSyntheticScene("chair");
    auto pipe = bench::pipelineForScene(*scene);
    Pcg32 rng(8, 8);

    const Vec3f center{0.5f, 0.45f, 0.5f};
    const nerf::Camera cam0 =
        nerf::Camera::orbit(center, 1.4f, 30.0f, 22.0f, 45.0f, size, size);
    const auto t_render = std::chrono::steady_clock::now();
    const nerf::DepthFrame frame = renderDepthFrame(*pipe, cam0, rng);
    const double render_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_render)
            .count();

    // The full-render reference FPS of the chip (motion-independent).
    const chip::Chip chip_model(chip::ChipConfig::scaledUp());
    const nerf::Camera big =
        nerf::Camera::orbit(center, 1.4f, 30.0f, 22.0f, 45.0f, 800, 800);
    const double full_fps = chip_model.evaluateInference(*pipe, big, 1024).fps;

    std::printf("%-18s %10s %12s %14s %16s\n", "camera motion", "overlap %",
                "warp PSNR", "assist FPS", "full render FPS");
    bench::rule(76);
    double warp_overhead_sum = 0.0;
    int warp_overhead_n = 0;
    for (const float delta_deg : {0.5f, 1.0f, 2.0f, 5.0f, 10.0f, 20.0f, 45.0f}) {
        const nerf::Camera cam1 = nerf::Camera::orbit(center, 1.4f, 30.0f + delta_deg,
                                                      22.0f, 45.0f, size, size);
        // Time the warp pass itself: its cost as a fraction of the full
        // render is the overhead term of warpAssistSpeedup(), measured
        // here instead of the 5 % modeling default.
        const auto t_warp = std::chrono::steady_clock::now();
        const nerf::WarpResult warped = nerf::forwardWarp(frame, cam1);
        const double warp_overhead =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t_warp)
                .count() /
            render_s;
        warp_overhead_sum += warp_overhead;
        ++warp_overhead_n;

        // Quality of the warped pixels against a true render.
        const nerf::DepthFrame truth = renderDepthFrame(*pipe, cam1, rng);
        double err = 0.0;
        std::size_t n = 0;
        for (int y = 0; y < size; ++y) {
            for (int x = 0; x < size; ++x) {
                if (!warped.covered[static_cast<std::size_t>(y) * size + x])
                    continue;
                const Vec3f d = warped.image.at(x, y) - truth.color.at(x, y);
                err += dot(d, d);
                n += 3;
            }
        }
        const double warp_psnr = n ? psnrFromMse(err / static_cast<double>(n)) : 0.0;
        const double assist_fps =
            full_fps * nerf::warpAssistSpeedup(warped.coverage, warp_overhead);

        std::printf("%14.1f deg %9.1f%% %9.1f dB %11.0f FPS %13.0f FPS\n",
                    delta_deg, warped.coverage * 100.0, warp_psnr, assist_fps,
                    full_fps);
        std::fflush(stdout);
    }
    bench::rule(76);
    std::printf("measured warp overhead: %.1f%% of a full render (mean over %d "
                "warps)\n",
                100.0 * warp_overhead_sum / warp_overhead_n, warp_overhead_n);
    std::printf("MetaVRain needs >97%% overlap for real-time operation; warping "
                "degrades with motion while the end-to-end accelerator's full "
                "re-render rate (%.0f FPS) is motion-independent.\n", full_fps);
    return 0;
}
