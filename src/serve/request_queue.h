/**
 * @file
 * Bounded MPMC request queue with admission control. Producers (any
 * thread calling RenderServer::submit) push without blocking — a full
 * queue rejects instead, which is the first stage of the server's load
 * shedding. The consumer side pops *batches*: the highest-priority
 * request plus queued requests for the same model, so one dispatch
 * shares a model lookup and keeps its tiles hot.
 *
 * Ordering: priority desc, then deadline asc, then FIFO.
 */

#ifndef FUSION3D_SERVE_REQUEST_QUEUE_H_
#define FUSION3D_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <mutex>
#include <vector>

#include "serve/serve.h"

namespace fusion3d::serve
{

/** A request riding through the queue with its completion promise. */
struct QueuedRequest
{
    RenderRequest request;
    std::promise<RenderResponse> promise;
    Clock::time_point enqueued{};
    /** When the dispatcher popped it (set in dispatchLoop); the gap to
     *  execution start is traced as the "dispatch_wait" span. */
    Clock::time_point dispatched{};
    std::uint64_t id = 0;
};

/** Bounded multi-producer / multi-consumer priority queue. */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity);

    /**
     * Admit @p qr. Never blocks.
     * @return false if the queue is full or closed (@p qr is left
     *         intact so the caller can reject it properly).
     */
    bool push(QueuedRequest &&qr);

    /**
     * Pop a batch: block until a request is available, take the front
     * (highest priority), then take up to @p max_batch - 1 further
     * queued requests for the same model, preserving queue order.
     * @return false when the queue is closed and drained.
     */
    bool popBatch(std::vector<QueuedRequest> &out, int max_batch);

    /** Current queued-request count. */
    std::size_t depth() const;

    /** Close the queue: pushes fail, popBatch drains then returns false. */
    void close();

    bool closed() const;

  private:
    mutable std::mutex mutex_;
    std::condition_variable nonempty_;
    /** Kept sorted by (priority desc, deadline asc, arrival). */
    std::list<QueuedRequest> items_;
    std::size_t capacity_;
    bool closed_ = false;
};

} // namespace fusion3d::serve

#endif // FUSION3D_SERVE_REQUEST_QUEUE_H_
