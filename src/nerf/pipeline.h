/**
 * @file
 * The complete single-model NeRF pipeline: Stage I (sampling through the
 * occupancy gate), Stage II (hash-grid feature interpolation), and
 * Stage III (MLP + volumetric compositing), with training support.
 * This is the workload one Fusion-3D chip executes end to end.
 */

#ifndef FUSION3D_NERF_PIPELINE_H_
#define FUSION3D_NERF_PIPELINE_H_

#include <memory>
#include <vector>

#include "nerf/adam.h"
#include "nerf/batch_evaluator.h"
#include "nerf/nerf_model.h"
#include "nerf/occupancy_grid.h"
#include "nerf/radiance_field.h"
#include "nerf/renderer.h"
#include "nerf/sample_batch.h"
#include "nerf/sampler.h"

namespace fusion3d::nerf
{

/** Pipeline-level configuration. */
struct PipelineConfig
{
    NerfModelConfig model;
    SamplerConfig sampler;
    RenderParams render;
    int occupancyResolution = 48;
    float occupancyThreshold = 0.01f;
    /** Compact occupancy-empty samples out of the batch before the
     *  model forward (RayBatchEvaluator::setCompaction). Composited
     *  colors stay bit-identical to the gated path. */
    bool occupancyCompaction = false;
    float lrEncoding = 1e-2f;
    float lrNet = 2e-3f;
    std::uint64_t seed = 7;
};

/** Single-model pipeline implementing the RadianceField interface. */
class NerfPipeline : public RadianceField
{
  public:
    using Config = PipelineConfig;

    explicit NerfPipeline(const PipelineConfig &cfg);

    const PipelineConfig &config() const { return cfg_; }
    NerfModel &model() { return *model_; }
    const NerfModel &model() const { return *model_; }
    OccupancyGrid &grid() { return grid_; }
    const OccupancyGrid &grid() const { return grid_; }
    const RaySampler &sampler() const { return sampler_; }

    /**
     * Stage-II access-trace observer applied during traceRay. The chip
     * model installs one to replay hash accesses through the banked-SRAM
     * simulation. Pass nullptr to detach.
     */
    void setVertexVisitor(VertexVisitor *v) { visitor_ = v; }

    /** Toggle occupancy-driven sample compaction at runtime. */
    void setOccupancyCompaction(bool on) { eval_.setCompaction(on); }
    bool occupancyCompaction() const { return eval_.compaction(); }
    /** Batch-vs-model sample counts of the last traceRays call. */
    RayBatchEvaluator::CompactionStats lastCompaction() const
    {
        return eval_.lastCompaction();
    }

    /** Scalar entry point; delegates to traceRays with a batch of one,
     *  so every evaluation rides the batched SoA core. */
    RayEval traceRay(const Ray &ray, Pcg32 &rng, bool record,
                     RayWorkload *workload = nullptr) override;
    void backwardLastRay(const Vec3f &dcolor) override;

    /**
     * Batch-native override: Stage I samples every ray into one
     * SampleBatch (CSR per-ray ranges), one NerfModel::forwardBatch
     * evaluates the flattened samples, and each ray composites over its
     * offset range. record=true keeps the whole batch as the tape for
     * backwardRays().
     */
    void traceRays(std::span<const Ray> rays, Pcg32 &rng, bool record,
                   std::span<RayEval> out, RayWorkload *workload = nullptr) override;
    /** Composite-backward per ray, then one batched model backward. */
    void backwardRays(std::span<const Vec3f> dcolors) override;

    void updateOccupancy(Pcg32 &rng) override;
    void quantizeWeights() override;
    std::size_t paramCount() const override;

    /**
     * Tiled inference render (parallel_render row tiling, jitter off);
     * bit-identical at any thread count. Always available here.
     */
    bool renderViewTiled(const Camera &camera, ThreadPool &pool, Image &out) override;

  protected:
    void zeroGradsImpl() override;
    void optimizerStepImpl() override;
    void invalidateTapes() override;

  private:
    PipelineConfig cfg_;
    VertexVisitor *visitor_ = nullptr;
    std::unique_ptr<NerfModel> model_;
    OccupancyGrid grid_;
    RaySampler sampler_;
    PointWorkspace ws_;
    NerfBatchWorkspace batch_ws_;

    Adam adam_encoding_;
    Adam adam_density_;
    Adam adam_color_;

    /** Shared Stage I/III machinery: CSR batch build, compositing,
     *  composite tape (the hoisted former pipeline internals). */
    RayBatchEvaluator eval_{"NerfPipeline"};

    // Parallel-training arenas (used only when a pool is attached);
    // grown once, allocation-free in steady state.
    NerfParallelWorkspace par_ws_;
    std::vector<Vec3f> occ_positions_;
    std::vector<float> occ_densities_;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_PIPELINE_H_
