/**
 * @file
 * Example: a closed-loop load generator against the render-serving
 * subsystem (`fusion3d::serve`). Two phases:
 *
 *  1. Scaling — the same frame stream served with 1, 2, and 4 render
 *     threads; closed-loop clients keep the queue primed so the
 *     work-sharing pool is the bottleneck. On a machine with >= 4
 *     hardware threads, 4 workers must deliver >= 2x the frame rate
 *     of 1 worker.
 *  2. Overload — tight deadlines and a deliberately undersized queue
 *     push the server down its degrade ladder (half-resolution, then
 *     warp reprojection) and into admission-control shedding. The run
 *     must terminate cleanly with nonzero degrade/shed counters.
 *
 * A third mode replaces both phases with a *session trace*:
 *
 *  --orbit         N concurrent camera streams (default 4, see
 *                  --sessions), each a client thread orbiting its own
 *                  camera in small steps and tagging its requests with
 *                  a session id — the workload the temporal
 *                  reprojection cache accelerates. Prints per-stream
 *                  outcomes plus one machine-readable "JSON:" summary
 *                  line with the session cache hit rate and the mean
 *                  rays actually marched per frame.
 *
 * A fourth mode exercises the *model fleet*:
 *
 *  --fleet N       deploy N distinct models from `.f3dm` artifacts and
 *                  drive zipf-distributed traffic at them from
 *                  concurrent tenants (closed loop, [frames] requests
 *                  per tenant). With --budget M the registry only fits
 *                  M models resident, so the popularity tail is LRU-
 *                  evicted and reloaded on demand. Prints per-tenant
 *                  outcome counts and latency quantiles plus a "JSON:"
 *                  line with the eviction hit rate, reloads/s, and
 *                  per-tenant p99.
 *
 * Usage: serve_loadgen [frames_per_config] [resolution]
 *            [--orbit] [--sessions N] [--tensorf]
 *            [--fleet N] [--zipf S] [--tenants T] [--budget M]
 *            [--trace FILE] [--metrics FILE] [--faults SPEC]
 *            [--slo TARGET_MS] [--flight-dump DIR] [--metrics-prefix P]
 *
 *  --orbit         run the session-trace mode described above;
 *  --tensorf       deploy the demo model as a TensoRF (CP-factorized)
 *                  backend from a `.f3dm` v3 artifact instead of the
 *                  in-memory hash-grid model; the serve path is
 *                  backend-polymorphic, so the scaling/overload/orbit
 *                  phases run unchanged against it;
 *  --sessions N    number of concurrent streams in --orbit mode;
 *  --fleet N       run the fleet mode described above with N models;
 *  --zipf S        zipf exponent of the fleet's popularity curve
 *                  (default 1.1);
 *  --tenants T     concurrent tenants in --fleet mode (default 4);
 *  --budget M      registry memory budget in models (--fleet mode);
 *                  0 = unlimited, the default;
 *  --trace FILE    enable the span tracer and write a Chrome
 *                  trace-event JSON (load in Perfetto) of the run;
 *  --metrics FILE  write a Prometheus text snapshot of the overload
 *                  phase's metrics;
 *  --faults SPEC   arm the fault injector with a FaultPlan spec (e.g.
 *                  "serve.dispatch.slow=p0.2;serve.dispatch.throw=p0.05;
 *                  seed=7") and run both phases under it. With faults
 *                  armed, worker failures are tolerated (counted, not
 *                  fatal); the every-request-terminates and
 *                  stats-reconciliation checks still apply;
 *  --slo TARGET_MS enable the SLO watchdog with the given p99 latency
 *                  target (1 s windows); a breaching window dumps the
 *                  flight recorder;
 *  --flight-dump DIR
 *                  write flight-recorder dumps (SLO breaches, faults,
 *                  worker throws) as JSON files under DIR, plus one
 *                  unconditional snapshot at exit;
 *  --metrics-prefix P
 *                  prefix Prometheus metric names with P (default
 *                  "fusion3d_").
 *
 * Besides the mode-specific "JSON:" line, every run prints one
 * "LATENCY_JSON:" line: p50/p99/p99.9 latency, per-outcome latency
 * quantiles, the worst request's id (feed it to f3d_trace --request),
 * and SLO window/breach counts when --slo is on.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include <filesystem>

#include "common/fault.h"
#include "common/logging.h"
#include "common/rng.h"
#include "nerf/nerf_model.h"
#include "nerf/serialize.h"
#include "nerf/tensorf.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/scheduler.h"

using namespace fusion3d;

namespace
{

nerf::NerfModelConfig
demoModelConfig()
{
    nerf::NerfModelConfig cfg;
    cfg.grid.levels = 6;
    cfg.grid.featuresPerLevel = 2;
    cfg.grid.log2TableSize = 12;
    cfg.grid.baseResolution = 8;
    cfg.grid.maxResolution = 64;
    cfg.geoFeatures = 7;
    cfg.densityHidden = 16;
    cfg.colorHidden = 16;
    cfg.shDegree = 2;
    return cfg;
}

/** The demo scene as a TensoRF backend (--tensorf), serve-sized like
 *  demoModelConfig(). */
nerf::TensorfModelConfig
demoTensorfConfig()
{
    nerf::TensorfModelConfig cfg;
    cfg.densityRank = 6;
    cfg.appearanceRank = 8;
    cfg.lineResolution = 48;
    cfg.appearanceDim = 8;
    cfg.colorHidden = 16;
    return cfg;
}

/** --slo TARGET_MS; 0 leaves the watchdog off. */
double g_slo_target_ms = 0.0;

serve::ServeConfig
baseConfig(int threads)
{
    serve::ServeConfig sc;
    sc.renderThreads = threads;
    sc.render.sampler.maxSamplesPerRay = 24;
    if (g_slo_target_ms > 0.0) {
        sc.slo.enabled = true;
        sc.slo.targetP99Ms = g_slo_target_ms;
        sc.slo.windowSeconds = 1.0;
        sc.slo.minWindowRequests = 8;
    }
    return sc;
}

/**
 * The shared latency summary: overall p50/p99/p99.9, latency quantiles
 * per outcome that actually occurred, the worst request's id (the one
 * to look up with `f3d_trace --request`), and the SLO window/breach
 * counts when the watchdog is on.
 */
std::string
latencySummaryJson(const serve::ServerStats &stats,
                   const obs::SloMonitor *slo)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"p999_ms\":%.3f,"
                  "\"worst_latency_ms\":%.3f,\"worst_request_id\":%llu",
                  stats.p50LatencyMs(), stats.p99LatencyMs(),
                  stats.p999LatencyMs(), stats.worstLatencyMs(),
                  static_cast<unsigned long long>(
                      stats.worstLatencyRequestId()));
    std::string json = buf;
    json += ",\"outcomes\":{";
    bool first = true;
    for (int i = 0; i < serve::kOutcomeCount; ++i) {
        const auto outcome = static_cast<serve::Outcome>(i);
        const std::uint64_t n = stats.count(outcome);
        if (n == 0)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "%s\"%s\":{\"count\":%llu,\"p50_ms\":%.3f,"
                      "\"p99_ms\":%.3f}",
                      first ? "" : ",", serve::outcomeName(outcome),
                      static_cast<unsigned long long>(n),
                      stats.outcomeLatencyQuantileMs(outcome, 0.50),
                      stats.outcomeLatencyQuantileMs(outcome, 0.99));
        json += buf;
        first = false;
    }
    json += "}";
    if (slo) {
        std::snprintf(buf, sizeof(buf),
                      ",\"slo\":{\"target_p99_ms\":%.1f,\"windows\":%llu,"
                      "\"breaches\":%llu}",
                      slo->config().targetP99Ms,
                      static_cast<unsigned long long>(slo->windowsClosed()),
                      static_cast<unsigned long long>(slo->breaches()));
        json += buf;
    }
    json += "}";
    return json;
}

/** Orbit camera for frame @p i of the stream. */
nerf::Camera
orbitFrame(int i, int size)
{
    return nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 35.0f, 20.0f,
                               static_cast<float>(i * 7 % 360), size, size);
}

/** Frame @p i of session @p s's smooth orbit (0.5 deg/frame — the
 *  small-motion stream the reprojection cache accelerates). */
nerf::Camera
sessionFrame(int s, int i, int size)
{
    return nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f,
                               35.0f + 90.0f * s + 0.5f * i, 20.0f, 45.0f,
                               size, size);
}

/**
 * Session-trace mode (--orbit): @p sessions concurrent streams of
 * @p frames small-motion frames each, every request tagged with its
 * stream's session id so the server can serve it by temporal
 * reprojection. Returns the process exit code.
 */
int
runOrbitTrace(serve::ModelRegistry &registry, int frames, int size,
              int sessions, const std::string &metrics_path,
              const std::string &trace_path)
{
    inform("orbit mode: %d session(s) x %d frames of %dx%d", sessions, frames,
           size, size);
    serve::ServeConfig sc = baseConfig(2);
    serve::RenderServer server(registry, sc);

    std::atomic<std::uint64_t> rejected{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(sessions));
    for (int s = 0; s < sessions; ++s) {
        threads.emplace_back([&server, &rejected, s, frames, size]() {
            const std::string session = "orbit-" + std::to_string(s);
            for (int i = 0; i < frames; ++i) {
                serve::RenderRequest req;
                req.model = "demo";
                req.camera = sessionFrame(s, i, size);
                req.session = session;
                const serve::RenderResponse r = server.submit(req).get();
                if (serve::isRejected(r.outcome)) {
                    rejected.fetch_add(1);
                    if (!FaultInjector::instance().active())
                        fatal("unloaded server rejected frame %d of %s (%s)",
                              i, session.c_str(),
                              serve::outcomeName(r.outcome));
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    server.drainAndPrintStats(std::cout);

    const auto &stats = server.stats();
    const std::uint64_t total = static_cast<std::uint64_t>(sessions) * frames;
    const std::uint64_t lookups = stats.sessionHits() + stats.sessionMisses();
    const double hit_rate =
        lookups ? static_cast<double>(stats.sessionHits()) / lookups : 0.0;
    const std::uint64_t completed_frames =
        std::max<std::uint64_t>(1, total - rejected.load());
    const double rays_per_frame =
        static_cast<double>(stats.raysMarched()) / completed_frames;
    const double rays_saved_frac =
        stats.raysMarched() + stats.raysSaved()
            ? static_cast<double>(stats.raysSaved()) /
                  (stats.raysMarched() + stats.raysSaved())
            : 0.0;

    inform("orbit summary: %.2f frames/s, session hit rate %.0f%%, "
           "%llu reprojected / %llu full, mean %.0f rays/frame "
           "(%.0f%% served from the warp), mean warp %.2f ms",
           total / seconds, hit_rate * 100.0,
           static_cast<unsigned long long>(
               stats.count(serve::Outcome::renderedReproject)),
           static_cast<unsigned long long>(
               stats.count(serve::Outcome::renderedFull)),
           rays_per_frame, rays_saved_frac * 100.0, stats.meanWarpMs());

    char json[512];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\":\"serve_orbit\",\"sessions\":%d,\"frames_per_session\":%d,"
        "\"size\":%d,\"fps\":%.3f,\"hit_rate\":%.4f,\"reproject_frames\":%llu,"
        "\"full_frames\":%llu,\"reproject_fallbacks\":%llu,"
        "\"rays_per_frame\":%.1f,\"rays_saved_fraction\":%.4f,"
        "\"mean_warp_ms\":%.3f}",
        sessions, frames, size, total / seconds, hit_rate,
        static_cast<unsigned long long>(
            stats.count(serve::Outcome::renderedReproject)),
        static_cast<unsigned long long>(
            stats.count(serve::Outcome::renderedFull)),
        static_cast<unsigned long long>(stats.reprojectFallbacks()),
        rays_per_frame, rays_saved_frac, stats.meanWarpMs());
    std::printf("JSON: %s\n", json);

    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        if (!out)
            fatal("cannot open metrics file '%s'", metrics_path.c_str());
        obs::MetricsRegistry::global().exportPrometheus(out);
        inform("wrote metrics snapshot to %s", metrics_path.c_str());
    }
    server.shutdown();
    std::printf("LATENCY_JSON: %s\n",
                latencySummaryJson(stats, server.slo()).c_str());
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out)
            fatal("cannot open trace file '%s'", trace_path.c_str());
        obs::Tracer::instance().writeChromeTrace(out);
        inform("wrote %zu trace spans to %s (%llu dropped)",
               obs::Tracer::instance().eventCount(), trace_path.c_str(),
               static_cast<unsigned long long>(
                   obs::Tracer::instance().dropped()));
    }

    bool ok = stats.completed() == stats.submitted();
    if (!ok)
        warn("drain left %llu requests unaccounted",
             static_cast<unsigned long long>(stats.submitted() -
                                             stats.completed()));
    // Fault-free, a warm small-motion stream must actually exercise the
    // accelerate rung: every frame after each session's first is a
    // cache hit, and most of them serve by reprojection.
    if (!FaultInjector::instance().active()) {
        if (stats.sessionHits() <
            static_cast<std::uint64_t>(sessions) * (frames - 1)) {
            warn("expected %d warm frames per session to hit the cache",
                 frames - 1);
            ok = false;
        }
        if (stats.count(serve::Outcome::renderedReproject) == 0) {
            warn("expected reprojected frames on a small-motion stream");
            ok = false;
        }
    }
    inform(ok ? "serve_loadgen: all checks passed"
              : "serve_loadgen: CHECKS FAILED");
    return ok ? 0 : 1;
}

/** Zipf(@p s) cumulative distribution over ranks [0, n). */
std::vector<double>
zipfCdf(int n, double s)
{
    std::vector<double> cdf(static_cast<std::size_t>(n));
    double sum = 0.0;
    for (int k = 0; k < n; ++k) {
        sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf[static_cast<std::size_t>(k)] = sum;
    }
    for (double &c : cdf)
        c /= sum;
    return cdf;
}

/**
 * Fleet mode (--fleet): deploy @p fleet_n models from artifacts, give
 * the registry a budget of @p budget_models resident models (0 =
 * unlimited), and replay zipf(@p zipf_s) traffic from @p tenants_n
 * closed-loop tenants, @p frames requests each. Returns the process
 * exit code.
 */
int
runFleetTrace(int frames, int size, int fleet_n, double zipf_s, int tenants_n,
              int budget_models, const std::string &metrics_path,
              const std::string &trace_path)
{
    inform("fleet mode: %d models, zipf(%.2f), %d tenant(s) x %d requests of "
           "%dx%d, budget %s",
           fleet_n, zipf_s, tenants_n, frames, size, size,
           budget_models > 0
               ? strprintf("%d model(s)", budget_models).c_str()
               : "unlimited");

    // Save the fleet's artifacts (distinct weights per model).
    const std::string dir = std::filesystem::temp_directory_path().string();
    std::vector<std::string> paths;
    paths.reserve(static_cast<std::size_t>(fleet_n));
    for (int i = 0; i < fleet_n; ++i) {
        const nerf::NerfModel model(demoModelConfig(),
                                    3000 + static_cast<std::uint64_t>(i));
        std::string path = dir + strprintf("/f3d_loadgen_fleet_%03d.f3dm", i);
        if (!nerf::saveModel(model, path))
            fatal("cannot write fleet artifact %s", path.c_str());
        paths.push_back(std::move(path));
    }
    const auto name = [](int i) { return strprintf("fleet%03d", i); };

    serve::RegistryConfig rc;
    rc.occupancyResolution = 16;
    if (budget_models > 0) {
        // Size the budget off one probe entry; all fleet models share a
        // config, so every entry weighs the same.
        serve::ModelRegistry probe(rc);
        if (probe.addFromFile(name(0), paths[0]) != nerf::LoadStatus::ok)
            fatal("probe deploy failed");
        rc.memoryBudgetBytes =
            static_cast<std::size_t>(budget_models) * probe.residentBytes() +
            probe.residentBytes() / 2;
    }
    serve::ModelRegistry registry(rc);
    for (int i = 0; i < fleet_n; ++i)
        if (registry.addFromFile(name(i), paths[static_cast<std::size_t>(i)]) !=
            nerf::LoadStatus::ok)
            fatal("failed to deploy fleet model %d", i);

    serve::RenderServer server(registry, baseConfig(2));
    const std::vector<double> cdf = zipfCdf(fleet_n, zipf_s);
    const std::uint64_t hits0 = registry.acquireHits();
    const std::uint64_t reloads0 = registry.reloads();

    std::atomic<std::uint64_t> failed{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(tenants_n));
    for (int t = 0; t < tenants_n; ++t) {
        threads.emplace_back([&, t]() {
            Pcg32 rng(0xf1ee7ULL, 100 + static_cast<std::uint64_t>(t));
            for (int i = 0; i < frames; ++i) {
                serve::RenderRequest req;
                const double u = static_cast<double>(rng.nextFloat());
                const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
                req.model = name(static_cast<int>(it - cdf.begin()));
                req.tenant = strprintf("tenant%d", t);
                req.camera = orbitFrame(i, size);
                const serve::RenderResponse r = server.submit(req).get();
                if (r.outcome != serve::Outcome::renderedFull &&
                    r.outcome != serve::Outcome::renderedHalf) {
                    failed.fetch_add(1);
                    if (!FaultInjector::instance().active())
                        fatal("unloaded fleet rejected request %d of tenant%d "
                              "(%s)",
                              i, t, serve::outcomeName(r.outcome));
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    server.drainAndPrintStats(std::cout);
    const auto &stats = server.stats();
    const std::uint64_t hits = registry.acquireHits() - hits0;
    const std::uint64_t reloads = registry.reloads() - reloads0;
    const double hit_rate =
        hits + reloads > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + reloads)
            : 1.0;
    const double fps =
        static_cast<double>(tenants_n) * static_cast<double>(frames) / seconds;

    std::printf("%-12s %10s %8s %10s %10s %10s\n", "tenant", "completed",
                "shed", "quota rej", "p50 (ms)", "p99 (ms)");
    std::string tenants_json;
    for (const std::string &id : stats.tenantNames()) {
        std::printf("%-12s %10llu %8llu %10llu %10.2f %10.2f\n", id.c_str(),
                    static_cast<unsigned long long>(stats.tenantCompleted(id)),
                    static_cast<unsigned long long>(stats.tenantShed(id)),
                    static_cast<unsigned long long>(
                        stats.tenantQuotaRejected(id)),
                    stats.tenantLatencyQuantileMs(id, 0.50),
                    stats.tenantLatencyQuantileMs(id, 0.99));
        tenants_json += strprintf(
            "%s\"%s\":{\"completed\":%llu,\"shed\":%llu,\"p99_ms\":%.3f}",
            tenants_json.empty() ? "" : ",", id.c_str(),
            static_cast<unsigned long long>(stats.tenantCompleted(id)),
            static_cast<unsigned long long>(stats.tenantShed(id)),
            stats.tenantLatencyQuantileMs(id, 0.99));
    }
    inform("fleet summary: %.2f frames/s, hit rate %.3f, %llu reloads "
           "(%.2f/s), %llu evictions, %llu swaps",
           fps, hit_rate, static_cast<unsigned long long>(reloads),
           static_cast<double>(reloads) / seconds,
           static_cast<unsigned long long>(registry.evictions()),
           static_cast<unsigned long long>(registry.swaps()));

    std::printf(
        "JSON: {\"bench\":\"serve_fleet\",\"models\":%d,\"zipf\":%.2f,"
        "\"tenants\":%d,\"requests_per_tenant\":%d,\"budget_models\":%d,"
        "\"fps\":%.3f,\"hit_rate\":%.4f,\"reloads\":%llu,"
        "\"reloads_per_s\":%.3f,\"evictions\":%llu,\"tenant_p99\":{%s}}\n",
        fleet_n, zipf_s, tenants_n, frames, budget_models, fps, hit_rate,
        static_cast<unsigned long long>(reloads),
        static_cast<double>(reloads) / seconds,
        static_cast<unsigned long long>(registry.evictions()),
        tenants_json.c_str());

    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        if (!out)
            fatal("cannot open metrics file '%s'", metrics_path.c_str());
        obs::MetricsRegistry::global().exportPrometheus(out);
        inform("wrote metrics snapshot to %s", metrics_path.c_str());
    }
    server.shutdown();
    std::printf("LATENCY_JSON: %s\n",
                latencySummaryJson(stats, server.slo()).c_str());
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out)
            fatal("cannot open trace file '%s'", trace_path.c_str());
        obs::Tracer::instance().writeChromeTrace(out);
        inform("wrote %zu trace spans to %s (%llu dropped)",
               obs::Tracer::instance().eventCount(), trace_path.c_str(),
               static_cast<unsigned long long>(
                   obs::Tracer::instance().dropped()));
    }
    for (const std::string &p : paths)
        std::remove(p.c_str());

    bool ok = stats.completed() == stats.submitted();
    if (!ok)
        warn("drain left %llu requests unaccounted",
             static_cast<unsigned long long>(stats.submitted() -
                                             stats.completed()));
    if (!FaultInjector::instance().active() && failed.load() > 0)
        ok = false;
    inform(ok ? "serve_loadgen: all checks passed"
              : "serve_loadgen: CHECKS FAILED");
    return ok ? 0 : 1;
}

/**
 * Closed-loop throughput: @p clients client threads, each submitting
 * its next frame only after the previous one completed. Returns frames
 * per second over @p frames total rendered frames.
 */
double
closedLoopFps(serve::RenderServer &server, int frames, int clients, int size)
{
    std::atomic<int> next{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&server, &next, frames, size]() {
            for (int i = next.fetch_add(1); i < frames; i = next.fetch_add(1)) {
                serve::RenderRequest req;
                req.model = "demo";
                req.camera = orbitFrame(i, size);
                const serve::RenderResponse r = server.submit(req).get();
                // Under an armed fault plan rejections are the point of
                // the exercise; unloaded and fault-free they are a bug.
                if (serve::isRejected(r.outcome) &&
                    !FaultInjector::instance().active())
                    fatal("unloaded server rejected frame %d (%s)", i,
                          serve::outcomeName(r.outcome));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return static_cast<double>(frames) / seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    int frames = 24;
    int size = 48;
    bool orbit = false;
    bool tensorf = false;
    int sessions = 4;
    int fleet_n = 0;
    double zipf_s = 1.1;
    int tenants_n = 4;
    int budget_models = 0;
    std::string trace_path;
    std::string metrics_path;
    std::string fault_spec;
    std::string flight_dir;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
            fault_spec = argv[++i];
        } else if (std::strcmp(argv[i], "--orbit") == 0) {
            orbit = true;
        } else if (std::strcmp(argv[i], "--tensorf") == 0) {
            tensorf = true;
        } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
            sessions = std::max(std::atoi(argv[++i]), 1);
        } else if (std::strcmp(argv[i], "--fleet") == 0 && i + 1 < argc) {
            fleet_n = std::max(std::atoi(argv[++i]), 1);
        } else if (std::strcmp(argv[i], "--zipf") == 0 && i + 1 < argc) {
            zipf_s = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
            tenants_n = std::max(std::atoi(argv[++i]), 1);
        } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
            budget_models = std::max(std::atoi(argv[++i]), 0);
        } else if (std::strcmp(argv[i], "--slo") == 0 && i + 1 < argc) {
            g_slo_target_ms = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--flight-dump") == 0 &&
                   i + 1 < argc) {
            flight_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics-prefix") == 0 &&
                   i + 1 < argc) {
            obs::MetricsRegistry::global().setPrometheusPrefix(argv[++i]);
        } else if (positional == 0) {
            frames = std::max(std::atoi(argv[i]), 1);
            ++positional;
        } else if (positional == 1) {
            size = std::max(std::atoi(argv[i]), 8);
            ++positional;
        } else {
            fatal("usage: %s [frames] [resolution] [--orbit] [--sessions N] "
                  "[--tensorf] "
                  "[--fleet N] [--zipf S] [--tenants T] [--budget M] "
                  "[--trace FILE] [--metrics FILE] [--faults SPEC] "
                  "[--slo TARGET_MS] [--flight-dump DIR] "
                  "[--metrics-prefix P]",
                  argv[0]);
        }
    }

    if (!trace_path.empty())
        obs::Tracer::instance().setEnabled(true);
    if (!flight_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(flight_dir, ec);
        if (ec)
            fatal("cannot create flight-dump dir '%s': %s", flight_dir.c_str(),
                  ec.message().c_str());
        obs::FlightRecorder::instance().setDumpDir(flight_dir);
        inform("flight-recorder dumps -> %s", flight_dir.c_str());
    }
    // One unconditional snapshot on the way out (any return path), so a
    // clean run still leaves a black-box file to inspect.
    struct FlightExitDump
    {
        bool armed = false;
        ~FlightExitDump()
        {
            if (armed)
                obs::FlightRecorder::instance().triggerDump("loadgen_exit");
        }
    } flight_exit;
    flight_exit.armed = !flight_dir.empty();

    if (!fault_spec.empty()) {
        std::string why;
        if (!FaultInjector::instance().configureFromSpec(fault_spec, &why))
            fatal("bad --faults spec: %s", why.c_str());
        inform("fault plan armed: %s", fault_spec.c_str());
    }

    if (fleet_n > 0)
        return runFleetTrace(frames, size, fleet_n, zipf_s, tenants_n,
                             budget_models, metrics_path, trace_path);

    serve::ModelRegistry registry(/*occupancy_resolution=*/16);
    std::string tensorf_path;
    if (tensorf) {
        // Deploy through the real artifact path: write a `.f3dm` v3
        // TensoRF artifact, then addFromFile() — exactly what a
        // production deploy does. Everything downstream (batching,
        // degrade ladder, sessions) is backend-agnostic.
        const nerf::TensorfModel model(demoTensorfConfig(), 2024);
        const nerf::TensorfServeField field(model);
        tensorf_path = (std::filesystem::temp_directory_path() /
                        "serve_loadgen_tensorf.f3dm")
                           .string();
        if (!nerf::saveFieldAtomic(field, tensorf_path))
            fatal("cannot write TensoRF artifact %s", tensorf_path.c_str());
        if (registry.addFromFile("demo", tensorf_path) !=
            nerf::LoadStatus::ok)
            fatal("failed to deploy TensoRF artifact %s",
                  tensorf_path.c_str());
        inform("demo model: TensoRF backend from v3 artifact %s",
               tensorf_path.c_str());
    } else {
        registry.add("demo", std::make_unique<nerf::NerfModel>(
                                 demoModelConfig(), 2024));
    }
    // Keep the artifact until exit: the registry remembers its path
    // for reload-on-demand.
    struct ArtifactCleanup
    {
        std::string path;
        ~ArtifactCleanup()
        {
            if (!path.empty())
                std::remove(path.c_str());
        }
    } artifact_cleanup{tensorf_path};

    if (orbit)
        return runOrbitTrace(registry, frames, size, sessions, metrics_path,
                             trace_path);

    // --- Phase 1: throughput scaling across render threads ---
    inform("phase 1: closed-loop throughput, %d frames of %dx%d per config",
           frames, size, size);
    double fps1 = 0.0, fps4 = 0.0;
    for (const int threads : {1, 2, 4}) {
        serve::RenderServer server(registry, baseConfig(threads));
        const double fps = closedLoopFps(server, frames, /*clients=*/4, size);
        server.shutdown();
        inform("  %d render thread(s): %6.2f frames/s", threads, fps);
        if (threads == 1)
            fps1 = fps;
        if (threads == 4)
            fps4 = fps;
    }

    const unsigned hw = std::thread::hardware_concurrency();
    bool scaling_ok = true;
    if (hw >= 4) {
        scaling_ok = fps4 >= 2.0 * fps1;
        inform("  speedup 4 vs 1 threads: %.2fx (%s)", fps4 / fps1,
               scaling_ok ? "ok, >= 2x" : "FAILED, expected >= 2x");
    } else {
        inform("  speedup 4 vs 1 threads: %.2fx (not asserted: only %u "
               "hardware thread(s))",
               fps4 / fps1, hw);
    }

    // --- Phase 2: overload — degrade ladder and admission shedding ---
    inform("phase 2: overload (queue capacity 4, deadline pressure)");
    serve::ServeConfig sc = baseConfig(2);
    sc.queueCapacity = 4;
    sc.maxInFlight = 1;
    serve::RenderServer server(registry, sc);

    // Warm up: one unconstrained frame seeds the cost model and the
    // warp cache.
    {
        serve::RenderRequest req;
        req.model = "demo";
        req.camera = orbitFrame(0, size);
        server.submit(req).get();
    }
    const double est_full = server.estimatedSecondsPerPixel() * size * size *
                            sc.estimateHeadroom;

    // Tight-deadline frames, submitted serially so the queue wait does
    // not eat the budget: half the full-frame estimate forces the
    // half-resolution step, a tenth forces warp reprojection (or a
    // shed once even that is too slow).
    for (int i = 1; i <= 8; ++i) {
        serve::RenderRequest req;
        req.model = "demo";
        req.camera = orbitFrame(i, size);
        const double budget = (i % 2 != 0) ? est_full * 0.5 : est_full * 0.1;
        req.deadline = serve::Clock::now() +
                       std::chrono::duration_cast<serve::Clock::duration>(
                           std::chrono::duration<double>(budget));
        const serve::RenderResponse r = server.submit(req).get();
        inform("  frame %2d, budget %5.1f ms -> %s", i, budget * 1e3,
               serve::outcomeName(r.outcome));
    }

    // Open-loop burst into the 4-deep queue: admission control must
    // shed the overflow instead of blocking.
    std::vector<std::future<serve::RenderResponse>> burst;
    for (int i = 0; i < 24; ++i) {
        serve::RenderRequest req;
        req.model = "demo";
        req.camera = orbitFrame(i, size);
        burst.push_back(server.submit(req));
    }
    for (auto &f : burst)
        f.get();

    server.drainAndPrintStats(std::cout);
    server.shutdown();

    const auto &stats = server.stats();
    std::printf("LATENCY_JSON: %s\n",
                latencySummaryJson(stats, server.slo()).c_str());
    inform("overload summary: %llu submitted, %llu degraded, %llu shed; "
           "latency p50 %.2f ms, p95 %.2f ms, p99 %.2f ms",
           static_cast<unsigned long long>(stats.submitted()),
           static_cast<unsigned long long>(stats.degraded()),
           static_cast<unsigned long long>(stats.shed()),
           stats.p50LatencyMs(), stats.p95LatencyMs(), stats.p99LatencyMs());

    // Export while `server` is alive: its ServerStats unregisters from
    // the global registry on destruction.
    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        if (!out)
            fatal("cannot open metrics file '%s'", metrics_path.c_str());
        obs::MetricsRegistry::global().exportPrometheus(out);
        inform("wrote metrics snapshot to %s", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out)
            fatal("cannot open trace file '%s'", trace_path.c_str());
        obs::Tracer::instance().writeChromeTrace(out);
        inform("wrote %zu trace spans to %s (%llu dropped)",
               obs::Tracer::instance().eventCount(), trace_path.c_str(),
               static_cast<unsigned long long>(
                   obs::Tracer::instance().dropped()));
    }

    FaultInjector &faults = FaultInjector::instance();
    if (faults.active()) {
        inform("fault summary: %llu total fires",
               static_cast<unsigned long long>(faults.totalFires()));
        for (const std::string &point : faults.activePoints())
            inform("  %-28s %6llu fires / %6llu checks", point.c_str(),
                   static_cast<unsigned long long>(faults.fires(point)),
                   static_cast<unsigned long long>(faults.checks(point)));
        inform("  worker failures served as terminal outcomes: %llu",
               static_cast<unsigned long long>(stats.failed()));
    }

    bool ok = scaling_ok;
    // With faults armed the degrade/shed mix is whatever the plan made
    // of it; the invariant that must always hold is that every request
    // was accounted for. Fault-free, the overload phase must also have
    // exercised the ladder and admission control.
    if (!faults.active()) {
        if (stats.degraded() == 0) {
            warn("expected nonzero degraded count under deadline pressure");
            ok = false;
        }
        if (stats.count(serve::Outcome::rejectedQueueFull) == 0) {
            warn("expected admission-control shedding under the burst");
            ok = false;
        }
    }
    if (stats.completed() != stats.submitted()) {
        warn("drain left %llu requests unaccounted",
             static_cast<unsigned long long>(stats.submitted() -
                                             stats.completed()));
        ok = false;
    }
    inform(ok ? "serve_loadgen: all checks passed"
              : "serve_loadgen: CHECKS FAILED");
    return ok ? 0 : 1;
}
