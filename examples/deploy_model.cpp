/**
 * @file
 * Example: the deployment round trip of Sec. VI-D — train on-device,
 * serialize the compact model artifact (the ~10 MB payload the paper's
 * edge-link story is built on), stream it over the USB-class link, and
 * reload it elsewhere for rendering.
 *
 * Usage: deploy_model [scene] [iterations]
 */

#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "multichip/host_link.h"
#include "nerf/pipeline.h"
#include "nerf/serialize.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

using namespace fusion3d;

int
main(int argc, char **argv)
{
    const std::string scene_name = argc > 1 ? argv[1] : "hotdog";
    const int iterations = argc > 2 ? std::atoi(argv[2]) : 250;

    const auto scene = scenes::makeSyntheticScene(scene_name);
    scenes::DatasetConfig dc = scenes::syntheticRig(32);
    dc.reference.steps = 128;
    const nerf::Dataset data = scenes::makeDataset(*scene, dc);

    // --- Train ---
    nerf::PipelineConfig pc;
    pc.model.grid.levels = 8;
    pc.model.grid.log2TableSize = 14;
    pc.sampler.maxSamplesPerRay = 48;
    nerf::NerfPipeline pipeline(pc);
    nerf::TrainerConfig tc;
    tc.iterations = iterations;
    tc.raysPerBatch = 160;
    nerf::Trainer trainer(pipeline, data, tc);
    inform("training '%s' for %d iterations ...", scene_name.c_str(), iterations);
    const double trained_psnr = trainer.run().finalPsnr;
    inform("trained to %.2f dB", trained_psnr);

    // --- Serialize (atomically: write-to-temp, fsync, rename, so an
    // interrupted deploy never clobbers a previous artifact) ---
    const std::string path = "deployed_model.f3dm";
    if (!nerf::saveModelAtomic(pipeline.model(), path))
        fatal("could not write %s", path.c_str());
    const std::size_t bytes = nerf::modelFootprintBytes(pipeline.model());
    inform("saved %s: %.2f MB (paper: ~10 MB NeRF payloads)", path.c_str(),
           bytes / (1024.0 * 1024.0));

    // --- Link budget ---
    const auto plan = multichip::planTrainingSession(
        /*dataset_bytes=*/0.0, static_cast<double>(bytes), /*train_seconds=*/0.0);
    inform("streaming the model over USB 3.2 Gen 1 takes %.3f s",
           plan.modelOutSeconds);

    // --- Reload and render ---
    const auto loaded = nerf::loadModel(path);
    if (!loaded)
        fatal("could not reload %s", path.c_str());

    // Rebuild a pipeline around the loaded weights: copy them in and
    // refresh the occupancy gate from the loaded field.
    nerf::NerfPipeline receiver(pc);
    if (!nerf::loadInto(receiver.model(), *loaded))
        fatal("loaded model does not fit the receiver pipeline");
    Pcg32 rng(77, 3);
    receiver.updateOccupancy(rng);

    nerf::Trainer render_helper(receiver, data, nerf::TrainerConfig{});
    const Image img = render_helper.renderView(data.test[0].camera);
    const double received_psnr = psnr(img, data.test[0].image);
    img.writePpm("deployed_render.ppm");
    inform("receiver renders the reloaded model at %.2f dB (sender: %.2f dB)",
           received_psnr, trained_psnr);
    inform("wrote deployed_render.ppm");
    return received_psnr + 1.5 < trained_psnr ? 1 : 0;
}
