/**
 * @file
 * Bottom-up energy model: per-operation 28 nm energy coefficients
 * (MACs, SRAM accesses, interconnect bytes) applied to a workload's
 * operation counts. Cross-checks the top-down TechModel number
 * (power x time) — the two independent estimates agreeing within a
 * small factor is the usual sanity bar for accelerator papers.
 */

#ifndef FUSION3D_CHIP_ENERGY_MODEL_H_
#define FUSION3D_CHIP_ENERGY_MODEL_H_

#include <cstdint>

#include "chip/perf_model.h"

namespace fusion3d::chip
{

/** 28 nm per-operation energy coefficients (joules). */
struct EnergyCoefficients
{
    /** One fp16 multiply-accumulate. */
    double macFp16J = 1.0e-12;
    /** One fp32 multiply-accumulate (training arithmetic). */
    double macFp32J = 3.0e-12;
    /** One byte read/written from a small on-chip SRAM bank. */
    double sramByteJ = 0.6e-12;
    /** One byte moved across the on-chip NoC. */
    double nocByteJ = 0.15e-12;
    /** Static/clock overhead per cycle for the whole chip. */
    double idlePerCycleJ = 0.35e-9;
};

/** Bottom-up energy estimate of one run. */
struct EnergyBreakdown
{
    double mlpJ = 0.0;
    double sramJ = 0.0;
    double nocJ = 0.0;
    double staticJ = 0.0;

    double totalJ() const { return mlpJ + sramJ + nocJ + staticJ; }
};

/**
 * Estimate the energy of a characterized run bottom-up.
 * @param wl       The workload (points, levels, MACs/point).
 * @param run      The timing result (cycles for the static term).
 * @param training Charge fp32 arithmetic and the 3x Stage-II update.
 */
EnergyBreakdown estimateEnergy(const WorkloadProfile &wl, const ChipRunResult &run,
                               bool training,
                               const EnergyCoefficients &coeff = {});

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_ENERGY_MODEL_H_
