/**
 * @file
 * Low-overhead span tracer serializing to the Chrome trace-event JSON
 * format (loadable in Perfetto / chrome://tracing). Design points:
 *
 *  - *lock-free hot path*: each thread appends completed spans to its
 *    own fixed-capacity buffer; the only synchronization is one
 *    release-store of the buffer size per span, so concurrent readers
 *    (writeChromeTrace) see a consistent prefix without ever blocking
 *    a recording thread;
 *  - *cheap when disabled*: every instrumentation site first checks a
 *    relaxed atomic flag — one load and a predictable branch;
 *  - *compiled out entirely* with -DFUSION3D_TRACE_DISABLED, turning
 *    the F3D_TRACE_* macros into no-ops;
 *  - span category/name are `const char *` with static storage
 *    duration (string literals), so recording never allocates.
 *
 * `fusion3d::obs` is the bottom of the library dependency order: it
 * uses only the standard library, so even `common` (ThreadPool) can be
 * instrumented without a cycle.
 */

#ifndef FUSION3D_OBS_TRACE_H_
#define FUSION3D_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace fusion3d::obs
{

/** One completed span, timestamps in ns since the tracer epoch. */
struct TraceEvent
{
    const char *category = nullptr; ///< static string (literal)
    const char *name = nullptr;     ///< static string (literal)
    std::uint64_t t0Ns = 0;
    std::uint64_t t1Ns = 0;
    /** Optional numeric payload (batch size, row index, request id). */
    std::uint64_t arg = 0;
    bool hasArg = false;
};

/** Process-wide span collector. All methods are thread-safe. */
class Tracer
{
  public:
    /** Events each thread can hold; further spans are dropped. */
    static constexpr std::size_t kThreadCapacity = 1 << 16;

    static Tracer &instance();

    /** Start/stop recording. Spans while disabled cost one atomic load. */
    void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Nanoseconds since the tracer epoch (steady clock). */
    std::uint64_t nowNs() const;

    /** Convert a steady_clock time_point to tracer-epoch nanoseconds. */
    std::uint64_t toNs(std::chrono::steady_clock::time_point tp) const;

    /**
     * Record one completed span on the calling thread's buffer.
     * @p category and @p name must have static storage duration.
     * No-op when disabled; drops (and counts) when the buffer is full.
     */
    void record(const char *category, const char *name, std::uint64_t t0_ns,
                std::uint64_t t1_ns);

    /** record() with a numeric payload serialized into "args". */
    void recordArg(const char *category, const char *name, std::uint64_t t0_ns,
                   std::uint64_t t1_ns, std::uint64_t arg);

    /**
     * Record a zero-duration marker span at "now" (e.g. a fault fire or
     * a breaker trip). One enabled() check when tracing is off.
     */
    void recordInstant(const char *category, const char *name);

    /** Spans currently buffered across all threads. */
    std::size_t eventCount() const;

    /** Spans dropped because a thread buffer was full. */
    std::uint64_t dropped() const;

    /**
     * Serialize every buffered span as Chrome trace-event JSON
     * ({"traceEvents":[...]}, "X" complete events, ts/dur in us).
     * Safe to call while other threads record: each thread buffer's
     * published prefix is serialized.
     */
    void writeChromeTrace(std::ostream &os) const;

    /**
     * Discard all buffered spans. Call only while no other thread is
     * recording (e.g. between bench configurations).
     */
    void clear();

  private:
    struct ThreadBuffer
    {
        explicit ThreadBuffer(std::uint32_t tid_) : tid(tid_)
        {
            events.resize(kThreadCapacity);
        }

        std::uint32_t tid;
        std::vector<TraceEvent> events;
        /** Published event count: slots < size are immutable. */
        std::atomic<std::size_t> size{0};
    };

    Tracer();

    ThreadBuffer &localBuffer();

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> dropped_{0};
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex registry_mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/** RAII span: opens at construction, records at destruction. */
class ScopedSpan
{
  public:
    ScopedSpan(const char *category, const char *name)
        : category_(category), name_(name)
    {
        Tracer &tracer = Tracer::instance();
        if (tracer.enabled()) {
            active_ = true;
            t0_ = tracer.nowNs();
        }
    }

    ScopedSpan(const char *category, const char *name, std::uint64_t arg)
        : ScopedSpan(category, name)
    {
        arg_ = arg;
        has_arg_ = true;
    }

    ~ScopedSpan()
    {
        if (!active_)
            return;
        Tracer &tracer = Tracer::instance();
        if (has_arg_)
            tracer.recordArg(category_, name_, t0_, tracer.nowNs(), arg_);
        else
            tracer.record(category_, name_, t0_, tracer.nowNs());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *category_;
    const char *name_;
    std::uint64_t t0_ = 0;
    std::uint64_t arg_ = 0;
    bool active_ = false;
    bool has_arg_ = false;
};

} // namespace fusion3d::obs

#ifdef FUSION3D_TRACE_DISABLED
#define F3D_TRACE_CONCAT2(a, b) a##b
#define F3D_TRACE_CONCAT(a, b) F3D_TRACE_CONCAT2(a, b)
#define F3D_TRACE_SPAN(category, name) ((void)0)
#define F3D_TRACE_SPAN_ARG(category, name, arg) ((void)0)
#else
#define F3D_TRACE_CONCAT2(a, b) a##b
#define F3D_TRACE_CONCAT(a, b) F3D_TRACE_CONCAT2(a, b)
/** Trace the enclosing scope as one span. */
#define F3D_TRACE_SPAN(category, name)                                         \
    ::fusion3d::obs::ScopedSpan F3D_TRACE_CONCAT(f3d_trace_span_,              \
                                                 __COUNTER__)(category, name)
/** Trace the enclosing scope with a numeric payload. */
#define F3D_TRACE_SPAN_ARG(category, name, arg)                                \
    ::fusion3d::obs::ScopedSpan F3D_TRACE_CONCAT(f3d_trace_span_, __COUNTER__)(\
        category, name, static_cast<std::uint64_t>(arg))
#endif

#endif // FUSION3D_OBS_TRACE_H_
