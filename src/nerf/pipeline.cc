#include "nerf/pipeline.h"

#include "common/logging.h"
#include "common/quant.h"

namespace fusion3d::nerf
{

namespace
{

AdamConfig
adamFor(float lr, bool sparse)
{
    AdamConfig cfg;
    cfg.lr = lr;
    cfg.beta1 = 0.9f;
    cfg.beta2 = 0.99f;
    cfg.epsilon = 1e-15f;
    cfg.skipZeroGrad = sparse;
    return cfg;
}

} // namespace

NerfPipeline::NerfPipeline(const PipelineConfig &cfg)
    : cfg_(cfg),
      model_(std::make_unique<NerfModel>(cfg.model, cfg.seed)),
      grid_(cfg.occupancyResolution, cfg.occupancyThreshold),
      sampler_(cfg.sampler),
      ws_(model_->makeWorkspace()),
      adam_encoding_(model_->encoding().paramCount(), adamFor(cfg.lrEncoding, true)),
      adam_density_(model_->densityNet().paramCount(), adamFor(cfg.lrNet, false)),
      adam_color_(model_->colorNet().paramCount(), adamFor(cfg.lrNet, false))
{
}

RayEval
NerfPipeline::traceRay(const Ray &ray, Pcg32 &rng, bool record, RayWorkload *workload)
{
    RayEval ev;
    traceRays({&ray, 1}, rng, record, {&ev, 1}, workload);
    return ev;
}

void
NerfPipeline::backwardLastRay(const Vec3f &dcolor)
{
    backwardRays({&dcolor, 1});
}

void
NerfPipeline::traceRays(std::span<const Ray> rays, Pcg32 &rng, bool record,
                        std::span<RayEval> out, RayWorkload *workload)
{
    if (out.size() < rays.size())
        panic("NerfPipeline::traceRays: output span too small (%zu < %zu)",
              out.size(), rays.size());
    if (workload) {
        workload->pairs.clear();
        workload->totalCandidates = 0;
        workload->totalValid = 0;
        workload->ddaSteps = 0;
        workload->intersectionOps.reset();
    }

    SampleBatch &batch = record ? tape_batch_ : scratch_batch_;
    batch.clear();

    // Stage I: sample every ray, in order, into one flat SoA batch.
    // The rng is consumed per ray exactly as the scalar loop did, so
    // jitter streams are batch-size invariant.
    for (std::size_t r = 0; r < rays.size(); ++r) {
        sampler_.sample(rays[r], &grid_, rng, scratch_samples_,
                        workload ? &scratch_workload_ : nullptr);
        batch.appendRay(normalize(rays[r].dir), scratch_samples_);
        out[r] = RayEval{};
        out[r].samples = static_cast<int>(scratch_samples_.size());
        out[r].candidates =
            workload ? scratch_workload_.totalCandidates : out[r].samples;
        if (workload)
            workload->mergeFrom(scratch_workload_);
    }

    // Stages II+III: one batched forward over the whole flattened batch.
    batch.prepareOutputs();
    model_->forwardBatch(batch.positions, batch.dirs, batch_ws_, batch.sigmas,
                         batch.rgbs, visitor_);

    // Composite per ray through its CSR range.
    std::vector<CompositeResult> &results = record ? tape_results_ : scratch_results_;
    results.resize(rays.size());
    for (std::size_t r = 0; r < rays.size(); ++r) {
        const std::size_t begin = batch.rayBegin(static_cast<int>(r));
        const std::size_t count = batch.raySampleCount(static_cast<int>(r));
        const CompositeResult cr =
            composite({batch.sigmas.data() + begin, count},
                      {batch.rgbs.data() + begin, count},
                      {batch.dts.data() + begin, count}, cfg_.render);
        results[r] = cr;
        out[r].color = cr.color;
        out[r].transmittance = cr.transmittance;
        out[r].composited = cr.used;
        if (count > 0)
            out[r].firstHitT = batch.ts[begin];
    }

    if (record)
        tape_valid_ = true;
}

void
NerfPipeline::backwardRays(std::span<const Vec3f> dcolors)
{
    if (!tape_valid_)
        panic("NerfPipeline::backwardRays without a recorded traceRays");
    const std::size_t num_rays = static_cast<std::size_t>(tape_batch_.numRays());
    if (dcolors.size() < num_rays)
        panic("NerfPipeline::backwardRays: gradient span too small (%zu < %zu)",
              dcolors.size(), num_rays);

    // Composite backward per ray into the batch-wide gradient arrays
    // (entries past each ray's used count are zeroed, so the batched
    // model backward is a no-op for them).
    tape_dsigmas_.resize(tape_batch_.size());
    tape_drgbs_.resize(tape_batch_.size());
    for (std::size_t r = 0; r < num_rays; ++r) {
        const std::size_t begin = tape_batch_.rayBegin(static_cast<int>(r));
        const std::size_t count = tape_batch_.raySampleCount(static_cast<int>(r));
        compositeBackward({tape_batch_.sigmas.data() + begin, count},
                          {tape_batch_.rgbs.data() + begin, count},
                          {tape_batch_.dts.data() + begin, count}, cfg_.render,
                          tape_results_[r], dcolors[r],
                          {tape_dsigmas_.data() + begin, count},
                          {tape_drgbs_.data() + begin, count}, composite_scratch_);
    }

    // One batched backward through both MLPs and the hash encoding.
    model_->backwardBatch(tape_batch_.positions, tape_batch_.dirs, tape_dsigmas_,
                          tape_drgbs_, batch_ws_);
    tape_valid_ = false;
}

void
NerfPipeline::zeroGrads()
{
    model_->zeroGrads();
}

void
NerfPipeline::optimizerStep()
{
    adam_encoding_.step(model_->encoding().params(), model_->encoding().grads());
    adam_density_.step(model_->densityNet().params(), model_->densityNet().grads());
    adam_color_.step(model_->colorNet().params(), model_->colorNet().grads());
}

void
NerfPipeline::updateOccupancy(Pcg32 &rng)
{
    grid_.update([this](const Vec3f &p) { return model_->queryDensity(p, ws_); }, rng);
}

void
NerfPipeline::quantizeWeights()
{
    fakeQuantizeInPlace(model_->encoding().params());
    fakeQuantizeInPlace(model_->densityNet().params());
    fakeQuantizeInPlace(model_->colorNet().params());
}

std::size_t
NerfPipeline::paramCount() const
{
    return model_->paramCount();
}

} // namespace fusion3d::nerf
