#include "nerf/freq_nerf.h"

#include <cmath>

#include "common/logging.h"
#include "common/quant.h"
#include "nerf/sh_encoding.h"

namespace fusion3d::nerf
{

namespace
{

constexpr float kPi = 3.14159265358979323846f;

AdamConfig
adamFor(float lr)
{
    AdamConfig cfg;
    cfg.lr = lr;
    cfg.beta1 = 0.9f;
    cfg.beta2 = 0.99f;
    cfg.epsilon = 1e-15f;
    return cfg;
}

} // namespace

void
freqEncode(const Vec3f &p, int frequencies, std::span<float> out)
{
    const std::size_t need = 3 + 3 * 2 * static_cast<std::size_t>(frequencies);
    if (out.size() < need)
        panic("freqEncode: output span too small");
    out[0] = p.x;
    out[1] = p.y;
    out[2] = p.z;
    std::size_t at = 3;
    float scale = kPi;
    for (int k = 0; k < frequencies; ++k) {
        for (int axis = 0; axis < 3; ++axis) {
            const float v = p[axis] * scale;
            out[at++] = std::sin(v);
            out[at++] = std::cos(v);
        }
        scale *= 2.0f;
    }
}

FreqNerfModel::FreqNerfModel(const FreqNerfConfig &cfg, std::uint64_t seed)
    : cfg_(cfg),
      adam_trunk_(),
      adam_color_()
{
    if (cfg.posFrequencies < 1 || cfg.trunkLayers < 1)
        fatal("FreqNerfModel: invalid configuration");

    std::vector<int> trunk_sizes;
    trunk_sizes.push_back(cfg.posDims());
    for (int l = 0; l < cfg.trunkLayers; ++l)
        trunk_sizes.push_back(cfg.hidden);
    trunk_sizes.push_back(1 + cfg.geoFeatures);
    trunk_ = std::make_unique<Mlp>(trunk_sizes, seed);

    color_net_ = std::make_unique<Mlp>(
        std::vector<int>{cfg.geoFeatures + cfg.shDims(), cfg.colorHidden, 3},
        seed + 3);

    adam_trunk_ = Adam(trunk_->paramCount(), adamFor(2e-3f));
    adam_color_ = Adam(color_net_->paramCount(), adamFor(2e-3f));

    encoded_.resize(static_cast<std::size_t>(cfg.posDims()));
    sh_.resize(static_cast<std::size_t>(cfg.shDims()));
    color_in_.resize(static_cast<std::size_t>(cfg.geoFeatures + cfg.shDims()));
    dtrunk_out_.resize(static_cast<std::size_t>(1 + cfg.geoFeatures));
    dcolor_out_.resize(3);
    trunk_ws_ = trunk_->makeWorkspace();
    color_ws_ = color_net_->makeWorkspace();
}

float
FreqNerfModel::queryDensity(const Vec3f &pos)
{
    freqEncode(pos, cfg_.posFrequencies, encoded_);
    const std::span<const float> out = trunk_->forward(encoded_, trunk_ws_);
    raw_sigma_ = out[0];
    return NerfModel::densityActivation(raw_sigma_);
}

PointEval
FreqNerfModel::forwardPoint(const Vec3f &pos, const Vec3f &dir)
{
    PointEval pe;
    pe.sigma = queryDensity(pos);

    const std::span<const float> trunk_out = trunk_ws_.activations.back();
    for (int i = 0; i < cfg_.geoFeatures; ++i)
        color_in_[static_cast<std::size_t>(i)] =
            trunk_out[static_cast<std::size_t>(i) + 1];
    shEncode(dir, cfg_.shDegree, sh_);
    for (int i = 0; i < cfg_.shDims(); ++i)
        color_in_[static_cast<std::size_t>(cfg_.geoFeatures + i)] =
            sh_[static_cast<std::size_t>(i)];

    const std::span<const float> out = color_net_->forward(color_in_, color_ws_);
    for (int i = 0; i < 3; ++i) {
        const float r = out[static_cast<std::size_t>(i)];
        pe.rgb.at(i) = r >= 0.0f ? 1.0f / (1.0f + std::exp(-r))
                                 : std::exp(r) / (1.0f + std::exp(r));
    }
    return pe;
}

void
FreqNerfModel::backwardPoint(const Vec3f &pos, const Vec3f &dir, float dsigma,
                             const Vec3f &drgb)
{
    const PointEval pe = forwardPoint(pos, dir); // refresh caches

    for (int i = 0; i < 3; ++i) {
        const float s = pe.rgb[i];
        dcolor_out_[static_cast<std::size_t>(i)] = drgb[i] * s * (1.0f - s);
    }
    color_net_->backward(dcolor_out_, color_ws_);

    dtrunk_out_[0] = dsigma * NerfModel::densityActivationGrad(raw_sigma_, pe.sigma);
    for (int i = 0; i < cfg_.geoFeatures; ++i)
        dtrunk_out_[static_cast<std::size_t>(i) + 1] =
            color_ws_.dinput[static_cast<std::size_t>(i)];
    trunk_->backward(dtrunk_out_, trunk_ws_);
    // The positional encoding has no parameters; gradients stop here.
}

void
FreqNerfModel::queryDensityBatch(std::span<const Vec3f> pos, BatchWorkspace &ws,
                                 std::span<float> sigmas) const
{
    const std::size_t n = pos.size();
    if (sigmas.size() < n)
        panic("FreqNerfModel::queryDensityBatch: output span too small");
    const std::size_t pd = static_cast<std::size_t>(cfg_.posDims());

    // Feature-major frequency encode: same per-value arithmetic as
    // freqEncode(), laid out [posDims][N] for the batched GEMM.
    if (ws.encoded.size() < pd * n)
        ws.encoded.resize(pd * n);
    for (std::size_t s = 0; s < n; ++s) {
        ws.encoded[0 * n + s] = pos[s].x;
        ws.encoded[1 * n + s] = pos[s].y;
        ws.encoded[2 * n + s] = pos[s].z;
        std::size_t f = 3;
        float scale = kPi;
        for (int k = 0; k < cfg_.posFrequencies; ++k) {
            for (int axis = 0; axis < 3; ++axis) {
                const float v = pos[s][axis] * scale;
                ws.encoded[f++ * n + s] = std::sin(v);
                ws.encoded[f++ * n + s] = std::cos(v);
            }
            scale *= 2.0f;
        }
    }

    const std::span<const float> out =
        trunk_->forwardBatch({ws.encoded.data(), pd * n}, n, ws.trunkWs);
    if (ws.rawSigma.size() < n)
        ws.rawSigma.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
        ws.rawSigma[s] = out[s]; // trunk output row 0
        sigmas[s] = NerfModel::densityActivation(ws.rawSigma[s]);
    }
}

void
FreqNerfModel::forwardPointBatch(std::span<const Vec3f> pos,
                                 std::span<const Vec3f> dirs, BatchWorkspace &ws,
                                 std::span<float> sigmas, std::span<Vec3f> rgbs) const
{
    const std::size_t n = pos.size();
    if (dirs.size() < n || sigmas.size() < n || rgbs.size() < n)
        panic("FreqNerfModel::forwardPointBatch: span size mismatch");

    queryDensityBatch(pos, ws, sigmas);
    const std::span<const float> trunk_out = ws.trunkWs.activations.back();

    const std::size_t geo = static_cast<std::size_t>(cfg_.geoFeatures);
    const std::size_t shd = static_cast<std::size_t>(cfg_.shDims());
    if (ws.colorIn.size() < (geo + shd) * n)
        ws.colorIn.resize((geo + shd) * n);
    if (ws.sh.size() < shd)
        ws.sh.resize(shd);
    for (std::size_t i = 0; i < geo; ++i)
        for (std::size_t s = 0; s < n; ++s)
            ws.colorIn[i * n + s] = trunk_out[(i + 1) * n + s];
    for (std::size_t s = 0; s < n; ++s) {
        shEncode(dirs[s], cfg_.shDegree, ws.sh);
        for (std::size_t i = 0; i < shd; ++i)
            ws.colorIn[(geo + i) * n + s] = ws.sh[i];
    }

    const std::span<const float> out = color_net_->forwardBatch(
        {ws.colorIn.data(), (geo + shd) * n}, n, ws.colorWs);
    for (std::size_t s = 0; s < n; ++s) {
        for (int i = 0; i < 3; ++i) {
            const float r = out[static_cast<std::size_t>(i) * n + s];
            rgbs[s].at(i) = r >= 0.0f ? 1.0f / (1.0f + std::exp(-r))
                                      : std::exp(r) / (1.0f + std::exp(r));
        }
    }
}

namespace
{

/** Fill the two batched output-gradient matrices from the recomputed
 *  forward activations (shared by both batched backward variants). */
void
freqBackwardDeltas(const FreqNerfConfig &cfg, std::span<const float> dsigmas,
                   std::span<const Vec3f> drgbs, std::size_t n,
                   FreqNerfBatchWorkspace &ws)
{
    if (ws.dColorOut.size() < 3 * n)
        ws.dColorOut.resize(3 * n);
    for (std::size_t s = 0; s < n; ++s) {
        for (int i = 0; i < 3; ++i) {
            const float sv = ws.fwdRgbs[s][i];
            ws.dColorOut[static_cast<std::size_t>(i) * n + s] =
                drgbs[s][i] * sv * (1.0f - sv);
        }
    }
    const std::size_t geo = static_cast<std::size_t>(cfg.geoFeatures);
    if (ws.dTrunkOut.size() < (1 + geo) * n)
        ws.dTrunkOut.resize((1 + geo) * n);
    for (std::size_t s = 0; s < n; ++s)
        ws.dTrunkOut[s] = dsigmas[s] * NerfModel::densityActivationGrad(
                                           ws.rawSigma[s], ws.fwdSigmas[s]);
    // Rows 1.. come from the color net's input gradient (filled by the
    // caller after its color backward pass).
}

} // namespace

void
FreqNerfModel::backwardPointBatch(std::span<const Vec3f> pos,
                                  std::span<const Vec3f> dirs,
                                  std::span<const float> dsigmas,
                                  std::span<const Vec3f> drgbs, BatchWorkspace &ws)
{
    const std::size_t n = pos.size();
    if (ws.fwdSigmas.size() < n)
        ws.fwdSigmas.resize(n);
    if (ws.fwdRgbs.size() < n)
        ws.fwdRgbs.resize(n);
    forwardPointBatch(pos, dirs, ws, ws.fwdSigmas, ws.fwdRgbs);
    freqBackwardDeltas(cfg_, dsigmas, drgbs, n, ws);

    color_net_->backwardBatch({ws.dColorOut.data(), 3 * n}, n, ws.colorWs);
    const std::size_t geo = static_cast<std::size_t>(cfg_.geoFeatures);
    for (std::size_t i = 0; i < geo; ++i)
        for (std::size_t s = 0; s < n; ++s)
            ws.dTrunkOut[(i + 1) * n + s] = ws.colorWs.dinput[i * n + s];
    trunk_->backwardBatch({ws.dTrunkOut.data(), (1 + geo) * n}, n, ws.trunkWs);
}

void
FreqNerfModel::backwardPointBatchInto(std::span<const Vec3f> pos,
                                      std::span<const Vec3f> dirs,
                                      std::span<const float> dsigmas,
                                      std::span<const Vec3f> drgbs,
                                      BatchWorkspace &ws,
                                      std::span<float> grads) const
{
    const std::size_t n = pos.size();
    if (grads.size() < gradCount())
        panic("FreqNerfModel::backwardPointBatchInto: gradient span too small");
    if (ws.fwdSigmas.size() < n)
        ws.fwdSigmas.resize(n);
    if (ws.fwdRgbs.size() < n)
        ws.fwdRgbs.resize(n);
    forwardPointBatch(pos, dirs, ws, ws.fwdSigmas, ws.fwdRgbs);
    freqBackwardDeltas(cfg_, dsigmas, drgbs, n, ws);

    const std::size_t trunk_params = trunk_->paramCount();
    color_net_->backwardBatchInto({ws.dColorOut.data(), 3 * n}, n, ws.colorWs,
                                  grads.subspan(trunk_params));
    const std::size_t geo = static_cast<std::size_t>(cfg_.geoFeatures);
    for (std::size_t i = 0; i < geo; ++i)
        for (std::size_t s = 0; s < n; ++s)
            ws.dTrunkOut[(i + 1) * n + s] = ws.colorWs.dinput[i * n + s];
    trunk_->backwardBatchInto({ws.dTrunkOut.data(), (1 + geo) * n}, n, ws.trunkWs,
                              grads.first(trunk_params));
}

void
FreqNerfModel::accumulateGradients(std::span<const float> grads)
{
    if (grads.size() < gradCount())
        panic("FreqNerfModel::accumulateGradients: gradient span too small");
    const std::span<float> tg = trunk_->grads();
    for (std::size_t i = 0; i < tg.size(); ++i)
        tg[i] += grads[i];
    const std::span<float> cg = color_net_->grads();
    const std::size_t off = tg.size();
    for (std::size_t i = 0; i < cg.size(); ++i)
        cg[i] += grads[off + i];
}

void
FreqNerfModel::zeroGrads()
{
    trunk_->zeroGrads();
    color_net_->zeroGrads();
}

void
FreqNerfModel::optimizerStep(float lr_trunk, float lr_color)
{
    adam_trunk_.setLearningRate(lr_trunk);
    adam_color_.setLearningRate(lr_color);
    adam_trunk_.step(trunk_->params(), trunk_->grads());
    adam_color_.step(color_net_->params(), color_net_->grads());
}

void
FreqNerfModel::quantizeWeights()
{
    fakeQuantizeInPlace(trunk_->params());
    fakeQuantizeInPlace(color_net_->params());
}

std::size_t
FreqNerfModel::paramCount() const
{
    return trunk_->paramCount() + color_net_->paramCount();
}

std::uint64_t
FreqNerfModel::macsPerPoint() const
{
    return trunk_->forwardMacs() + color_net_->forwardMacs();
}

} // namespace fusion3d::nerf
