/**
 * @file
 * Regenerates Table III: the scaled-up single-chip accelerator versus
 * six baselines (two edge GPUs, four NeRF accelerators). Baseline rows
 * carry the numbers their own publications report (as in the paper);
 * the "This Work" column is produced by the calibrated cycle-level
 * simulator driven by real workload traces from the functional NeRF.
 */

#include <cstdio>

#include "baselines/platforms.h"
#include "bench/bench_util.h"
#include "chip/chip.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"

using namespace fusion3d;

int
main(int argc, char **argv)
{
    const int train_iters = argc > 1 ? std::atoi(argv[1]) : 300;
    bench::banner("Table III: single-chip accelerator vs SOTA NeRF accelerators");

    // --- Functional run: train on a representative synthetic scene ---
    const auto scene = scenes::makeSyntheticScene("lego");
    scenes::DatasetConfig dc = scenes::syntheticRig(32);
    dc.reference.steps = 128;
    const nerf::Dataset data = scenes::makeDataset(*scene, dc);

    nerf::PipelineConfig pc = bench::defaultPipeline();
    pc.sampler.maxSamplesPerRay = 48;
    nerf::NerfPipeline pipeline(pc);
    nerf::TrainerConfig tc;
    tc.iterations = train_iters;
    tc.raysPerBatch = 160;
    tc.evalEvery = 25;
    nerf::Trainer trainer(pipeline, data, tc);
    std::printf("training functional pipeline (%d iters) ...\n", train_iters);
    const nerf::TrainResult tr = trainer.run();
    std::printf("final PSNR %.2f dB; 25 dB reached at iter %d\n", tr.finalPsnr,
                tr.itersTo25Psnr);

    // --- Cycle-level characterization on the trained model ---
    const chip::ChipConfig cfg = chip::ChipConfig::scaledUp();
    const chip::Chip chip_model(cfg);
    const nerf::Camera cam =
        nerf::Camera::orbit({0.5f, 0.45f, 0.5f}, 1.4f, 25.0f, 25.0f, 45.0f, 800, 800);
    const chip::InferenceReport inf = chip_model.evaluateInference(pipeline, cam, 3000);
    const chip::TrainingReport trn = chip_model.evaluateTraining(pipeline, data, 4096);

    const double inf_mpts = inf.perf.throughputPointsPerSec / 1e6;
    const double trn_mpts = trn.perf.throughputPointsPerSec / 1e6;

    // --- The table ---
    std::printf("\n%-26s %8s %8s %8s %9s %10s %10s %10s %10s\n", "Platform", "Proc",
                "Area", "SRAM", "Clock", "Inf M/s", "Trn M/s", "Inf nJ/pt",
                "Trn nJ/pt");
    bench::rule(106);
    for (const auto &p : baselines::edgeBaselines()) {
        std::printf("%-26s %6dnm %6.1fmm %6.0fKB %6.0fMHz %10s %10s %10s %10s\n",
                    p.name.c_str(), p.processNm, p.dieAreaMm2, p.sramKb, p.clockMHz,
                    bench::fmtOpt(p.inferenceMpts.has_value(),
                                  p.inferenceMpts.value_or(0))
                        .c_str(),
                    bench::fmtOpt(p.trainingMpts.has_value(), p.trainingMpts.value_or(0))
                        .c_str(),
                    bench::fmtOpt(p.inferenceEnergyNj.has_value(),
                                  p.inferenceEnergyNj.value_or(0))
                        .c_str(),
                    bench::fmtOpt(p.trainingEnergyNj.has_value(),
                                  p.trainingEnergyNj.value_or(0))
                        .c_str());
    }
    std::printf("%-26s %6dnm %6.1fmm %6dKB %6.0fMHz %10.1f %10.1f %10.2f %10.2f\n",
                "This Work (simulated)", 28, cfg.dieAreaMm2, cfg.totalSramKb(),
                cfg.clockHz / 1e6, inf_mpts, trn_mpts, inf.perf.energyPerPointNj,
                trn.perf.energyPerPointNj);
    bench::rule(106);

    // --- Headline comparisons (paper Sec. VI-A) ---
    const auto &rtnerf = baselines::platform("RT-NeRF (Edge)");
    const auto &i3d = baselines::platform("Instant-3D");
    const auto &neurex = baselines::platform("NeuRex (Edge)");
    std::printf("Inference speedup vs best baseline (RT-NeRF, 288 M/s): %.2fx "
                "(paper: 1.36x; 591/288 = 2.05x w/ round values)\n",
                inf_mpts / *rtnerf.inferenceMpts);
    std::printf("Training speedup vs best baseline (Instant-3D, 32 M/s): %.2fx "
                "(paper: 4.15x ... 6.2x)\n",
                trn_mpts / *i3d.trainingMpts);
    std::printf("Inference speedup vs same-algorithm NeuRex (112 M/s): %.2fx "
                "(paper: ~6x incl. end-to-end effects)\n",
                inf_mpts / *neurex.inferenceMpts);
    std::printf("Inference energy eff. vs RT-NeRF (27 nJ/pt): %.1fx (paper: 19x)\n",
                *rtnerf.inferenceEnergyNj / inf.perf.energyPerPointNj);
    std::printf("Training energy eff. vs Instant-3D (59 nJ/pt): %.1fx (paper: 25x)\n",
                *i3d.trainingEnergyNj / trn.perf.energyPerPointNj);

    // --- Instant training / real-time rendering checks ---
    const double train_seconds =
        (tr.itersTo25Psnr > 0 ? tr.itersTo25Psnr : tr.iterationsRun) *
        trn.secondsPerIteration * (tr.totalRays / double(tr.iterationsRun)) /
        trn.raysPerBatch;
    std::printf("\nSimulated 800x800 frame rate: %.1f FPS (paper: 36 FPS, >=30 "
                "target) -> %s\n",
                inf.fps, inf.fps >= 30.0 ? "real-time" : "NOT real-time");
    std::printf("Simulated training to 25 PSNR (this workload scale): %.3f s "
                "(paper full-scale: 1.8 s, <=2 s target)\n",
                train_seconds);
    std::printf("Stage cycles (inference): S1=%llu S2=%llu S3=%llu (balanced by "
                "design, Sec. VI-C)\n",
                static_cast<unsigned long long>(inf.perf.stage1Cycles),
                static_cast<unsigned long long>(inf.perf.stage2Cycles),
                static_cast<unsigned long long>(inf.perf.stage3Cycles));
    return 0;
}
