/**
 * @file
 * Analytical models of the platforms the paper compares against
 * (Tables I, III, IV; Figs. 11, and the Table-V GPU). The headline
 * numbers are the values those platforms' own publications report —
 * exactly how the paper itself obtains them — and per-scene scaling is
 * workload-proportional, as in the paper's normalized comparisons.
 */

#ifndef FUSION3D_BASELINES_PLATFORMS_H_
#define FUSION3D_BASELINES_PLATFORMS_H_

#include <optional>
#include <string>
#include <vector>

namespace fusion3d::baselines
{

/** Published characteristics of one platform (Table III/IV rows). */
struct PlatformSpec
{
    std::string name;
    std::string venue;
    int processNm = 28;
    double dieAreaMm2 = 0.0;
    double clockMHz = 0.0;
    double sramKb = 0.0;
    std::optional<double> coreVoltage;
    std::string nerfAlgorithm = "Hash Grid";
    bool siliconPrototype = false;
    bool instantTraining = false;
    bool realTimeInference = false;
    bool endToEnd = false;
    /** Samples/s in millions (Table III convention). */
    std::optional<double> inferenceMpts;
    std::optional<double> trainingMpts;
    /** Energy per sampled point, nJ. */
    std::optional<double> inferenceEnergyNj;
    std::optional<double> trainingEnergyNj;
    /** Off-chip bandwidth, GB/s. */
    std::optional<double> offChipGBs;
    std::string offChipType;
    /** Typical power in W (Table IV platforms). */
    std::optional<double> typicalPowerW;

    /** Seconds for @p points sampled points of inference work. */
    std::optional<double>
    inferenceSeconds(double points) const
    {
        if (!inferenceMpts || *inferenceMpts <= 0.0)
            return std::nullopt;
        return points / (*inferenceMpts * 1e6);
    }

    /** Seconds for @p points sampled points of training work. */
    std::optional<double>
    trainingSeconds(double points) const
    {
        if (!trainingMpts || *trainingMpts <= 0.0)
            return std::nullopt;
        return points / (*trainingMpts * 1e6);
    }
};

/** The edge baselines of Table III (in table order). */
const std::vector<PlatformSpec> &edgeBaselines();

/** The cloud baselines of Table IV. */
const std::vector<PlatformSpec> &cloudBaselines();

/** The prior-accelerator bandwidth rows of Table I. */
const std::vector<PlatformSpec> &bandwidthTableRows();

/** Look up a baseline by name across all groups; fatal if unknown. */
const PlatformSpec &platform(const std::string &name);

} // namespace fusion3d::baselines

#endif // FUSION3D_BASELINES_PLATFORMS_H_
