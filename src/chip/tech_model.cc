#include "chip/tech_model.h"

#include <cmath>

#include "common/logging.h"

namespace fusion3d::chip
{

TechModel::TechModel(const ChipConfig &cfg)
    : cfg_(cfg)
{
    // Alpha-power law (alpha = 2): f = k * (V - Vth)^2 / V, fitted so
    // the nominal point (cfg.coreVoltage, cfg.clockHz) lies on the
    // curve. Vth = 0.53 V is typical of a 28 nm LP process.
    const double v = cfg.coreVoltage;
    const double ov = v - vth_;
    if (ov <= 0.0)
        fatal("TechModel: nominal voltage %.2f below threshold", v);
    kfit_ = cfg.clockHz * v / (ov * ov);

    // Module shares, calibrated to the published breakdown figures:
    // the feature-interpolation module dominates (about half of it is
    // feature SRAM, Sec. VIII), post-processing carries the MLP MACs.
    breakdown_ = {
        {"sampling", 0.12, 0.14},
        {"interp", 0.42, 0.40},
        {"postproc", 0.20, 0.28},
        {"memory", 0.18, 0.12},
        {"noc_ctrl", 0.08, 0.06},
    };
}

double
TechModel::frequencyAtVoltage(double voltage) const
{
    if (voltage <= vth_)
        return 0.0;
    const double ov = voltage - vth_;
    return kfit_ * ov * ov / voltage;
}

double
TechModel::voltageForFrequency(double hz) const
{
    // Bisect: frequencyAtVoltage is monotonic above Vth.
    double lo = vth_ + 1e-4;
    double hi = 1.5;
    if (frequencyAtVoltage(hi) < hz)
        fatal("TechModel: %g Hz unreachable below 1.5 V", hz);
    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (frequencyAtVoltage(mid) < hz)
            lo = mid;
        else
            hi = mid;
    }
    return hi;
}

double
TechModel::powerAt(double voltage, double hz) const
{
    // Split the anchored typical power into dynamic and leakage parts.
    constexpr double kDynFraction = 0.85;
    const double v0 = cfg_.coreVoltage;
    const double f0 = cfg_.clockHz;
    const double dyn = cfg_.typicalPowerW * kDynFraction * (voltage * voltage) /
                       (v0 * v0) * (hz / f0);
    const double leak = cfg_.typicalPowerW * (1.0 - kDynFraction) * (voltage / v0);
    return dyn + leak;
}

double
TechModel::moduleAreaMm2(const std::string &name) const
{
    for (const ModuleShare &m : breakdown_) {
        if (m.name == name)
            return m.areaFraction * cfg_.dieAreaMm2;
    }
    fatal("TechModel: unknown module '%s'", name.c_str());
}

double
TechModel::modulePowerW(const std::string &name) const
{
    for (const ModuleShare &m : breakdown_) {
        if (m.name == name)
            return m.powerFraction * cfg_.typicalPowerW;
    }
    fatal("TechModel: unknown module '%s'", name.c_str());
}

} // namespace fusion3d::chip
