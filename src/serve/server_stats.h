/**
 * @file
 * Serving metrics, built on the sim::Stats package the cycle-level
 * models already use: per-outcome counters, a submit-to-completion
 * latency distribution plus a log2-microsecond histogram and a
 * log2-bucket quantile estimator (p50/p95/p99), queue-depth and
 * batch-size distributions. All recording methods are thread-safe;
 * RenderServer::drain() leaves the block consistent for printing.
 * registerWith() exposes the whole block through an
 * obs::MetricsRegistry for Prometheus/JSON export.
 */

#ifndef FUSION3D_SERVE_SERVER_STATS_H_
#define FUSION3D_SERVE_SERVER_STATS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/quantiles.h"
#include "serve/serve.h"
#include "sim/stats.h"

namespace fusion3d::serve
{

/** Thread-safe statistics block of one RenderServer. */
class ServerStats
{
  public:
    ServerStats();
    ~ServerStats();

    /** Record a request entering submit(), and the queue depth it saw. */
    void recordSubmitted(std::size_t queue_depth);

    /** Record a request leaving the server. @p id (when nonzero) feeds
     *  the worst-latency-request tracker, so the slowest request can be
     *  looked up by id in a trace dump. */
    void recordOutcome(Outcome outcome, double latency_ms,
                       std::uint64_t id = 0);

    /** Record one dispatched batch of @p size same-model requests. */
    void recordBatch(int size);

    /** Record a session-cache lookup of a session request. */
    void recordSessionLookup(bool hit);

    /**
     * Record one reprojection attempt (hit path): tiles re-rendered,
     * rays marched vs saved, and the *measured* warp-pass cost — the
     * serving layer reports measured savings, not the modeled
     * warpAssistSpeedup() estimate.
     */
    void recordReproject(const ReprojectStats &rs);

    /** Record @p n ray-marched pixels of a non-reproject render (full
     *  or half resolution), so rays/frame is comparable across modes. */
    void recordRaysMarched(std::uint64_t n);

    /**
     * Record a completed request against its tenant ("" bills to the
     * "default" tenant): outcome class plus latency into the tenant's
     * own quantile estimator, exported as serve.tenant.<t>.* metrics.
     */
    void recordTenant(const std::string &tenant, Outcome outcome,
                      double latency_ms);

    /** Requests that entered submit(). */
    std::uint64_t submitted() const;

    /** Requests that finished with @p outcome. */
    std::uint64_t count(Outcome outcome) const;

    /** Completed = all outcomes, rejected or rendered. */
    std::uint64_t completed() const;

    /** Requests served degraded (half resolution or warped). */
    std::uint64_t degraded() const;

    /** Requests shed (queue full, deadline, unknown model, shutdown). */
    std::uint64_t shed() const;

    /** Requests whose worker failed (Outcome::failedInternal). */
    std::uint64_t failed() const;

    double meanLatencyMs() const;
    double maxLatencyMs() const;
    double meanBatchSize() const;

    // Session / reprojection accounting (serve.session_* metrics).
    std::uint64_t sessionHits() const;
    std::uint64_t sessionMisses() const;
    std::uint64_t reprojectFallbacks() const;
    /** Pixels ray-marched across all render modes. */
    std::uint64_t raysMarched() const;
    /** Pixels served from the warp instead of the ray-marcher. */
    std::uint64_t raysSaved() const;
    /** Mean measured warp-pass milliseconds per reprojection. */
    double meanWarpMs() const;

    /**
     * Submit-to-completion latency at quantile @p q in [0, 1], from
     * the log2-bucket estimator (relative error <= 6.25 %).
     */
    double latencyQuantileMs(double q) const;

    double p50LatencyMs() const { return latencyQuantileMs(0.50); }
    double p95LatencyMs() const { return latencyQuantileMs(0.95); }
    double p99LatencyMs() const { return latencyQuantileMs(0.99); }
    double p999LatencyMs() const { return latencyQuantileMs(0.999); }

    /** Latency quantile over requests that finished with @p outcome. */
    double outcomeLatencyQuantileMs(Outcome outcome, double q) const;

    /** Id / latency of the slowest completed request (0 when none). */
    std::uint64_t worstLatencyRequestId() const;
    double worstLatencyMs() const;

    // Per-tenant accounting ("" normalizes to "default").
    /** Tenants seen by recordTenant, sorted. */
    std::vector<std::string> tenantNames() const;
    /** Requests of @p tenant that reached any terminal outcome. */
    std::uint64_t tenantCompleted(const std::string &tenant) const;
    /** Requests of @p tenant shed (any rejected/failed outcome). */
    std::uint64_t tenantShed(const std::string &tenant) const;
    /** Requests of @p tenant shed by its queue-share quota. */
    std::uint64_t tenantQuotaRejected(const std::string &tenant) const;
    /** Latency quantile over @p tenant's completed requests (0 when
     *  the tenant is unknown). */
    double tenantLatencyQuantileMs(const std::string &tenant, double q) const;

    /** Dump every stat in the StatGroup text format. */
    void dump(std::ostream &os) const;

    /**
     * Register this block with @p registry as collector @p name;
     * samples are taken under the block's own lock. Unregisters any
     * previous registration of this block; the destructor unregisters
     * automatically.
     */
    void registerWith(obs::MetricsRegistry &registry, const std::string &name);

    /** Append every stat as metric samples (thread-safe). */
    void collect(obs::MetricSink &sink) const;

  private:
    static constexpr int kOutcomes = kOutcomeCount;

    struct TenantStats
    {
        explicit TenantStats(const std::string &name)
            : latency("serve.tenant." + name + ".latency_ms")
        {
        }
        std::uint64_t completed = 0;
        std::uint64_t rendered = 0;
        std::uint64_t shed = 0;
        std::uint64_t quotaRejected = 0;
        obs::Quantiles latency;
    };

    /** The tenant's stats slot, created on first touch. Caller holds
     *  mutex_. */
    TenantStats &tenantSlotLocked(const std::string &tenant);

    mutable std::mutex mutex_;
    sim::StatGroup group_;
    sim::Counter &submitted_;
    sim::Counter *outcomes_[kOutcomes];
    sim::Distribution &latency_ms_;
    sim::Distribution &queue_depth_;
    sim::Distribution &batch_size_;
    sim::Histogram &latency_log2us_;
    sim::Quantiles &latency_quantiles_;
    /** Per-outcome latency quantiles ("latency_ms_<outcome>"). */
    sim::Quantiles *outcome_latency_[kOutcomes];
    std::uint64_t worst_id_ = 0;
    double worst_ms_ = 0.0;
    /** Keyed by normalized tenant id ("" → "default"). unique_ptr:
     *  obs::Quantiles is not movable across map rehashes we care to
     *  reason about, and slots are handed out by reference. */
    std::map<std::string, std::unique_ptr<TenantStats>> tenants_;
    sim::Counter &session_hits_;
    sim::Counter &session_misses_;
    sim::Counter &reproject_fallbacks_;
    sim::Counter &rays_marched_;
    sim::Counter &rays_saved_;
    sim::Distribution &reproject_tiles_pct_;
    sim::Distribution &reproject_warp_ms_;

    // Where (if anywhere) this block is registered, for unregistration.
    obs::MetricsRegistry *registry_ = nullptr;
    std::string registered_name_;
};

} // namespace fusion3d::serve

#endif // FUSION3D_SERVE_SERVER_STATS_H_
