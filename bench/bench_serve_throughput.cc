/**
 * @file
 * Serving-layer throughput bench: closed-loop frame throughput of the
 * RenderServer across render-thread counts, on the Sec. VI-D style
 * deployment path (deserialized model -> registry -> tiled render).
 * Prints the usual table plus one machine-readable JSON summary line
 * (prefixed "JSON:") for scripted harvesting, now including tail
 * latency (p50/p95/p99 from the log2-bucket quantile estimator) and
 * per-outcome counts.
 *
 * Usage: bench_serve_throughput [frames_per_config] [resolution]
 *            [--trace FILE] [--metrics FILE] [--overhead-check]
 *
 *  --trace FILE    enable the span tracer and write a Chrome
 *                  trace-event JSON (Perfetto / chrome://tracing) with
 *                  spans from the serve, thread_pool and
 *                  parallel_render layers;
 *  --metrics FILE  write a Prometheus text-exposition snapshot of the
 *                  obs::MetricsRegistry after the run;
 *  --overhead-check
 *                  replace the thread sweep with an instrumentation
 *                  cost gate: best-of-3 closed-loop fps with tracing
 *                  off vs fully on (same workload), printed as a JSON
 *                  line; exits 1 if full tracing costs more than 5%
 *                  throughput.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/simd.h"
#include "nerf/nerf_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/scheduler.h"

using namespace fusion3d;

namespace
{

struct ThroughputPoint
{
    int threads;
    double fps;
    double meanLatencyMs;
    double meanBatchSize;
    double p50Ms;
    double p95Ms;
    double p99Ms;
    std::uint64_t outcomes[serve::kOutcomeCount];
};

nerf::Camera
orbitFrame(int i, int size)
{
    return nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 35.0f, 20.0f,
                               static_cast<float>(i * 7 % 360), size, size);
}

/**
 * Measure one thread-count configuration. When @p metrics_out is
 * non-null it receives a Prometheus snapshot taken before the server
 * (whose ServerStats unregisters on destruction) goes away.
 */
ThroughputPoint
measure(serve::ModelRegistry &registry, int threads, int frames, int size,
        std::string *metrics_out = nullptr)
{
    serve::ServeConfig sc;
    sc.renderThreads = threads;
    sc.render.sampler.maxSamplesPerRay = 24;
    serve::RenderServer server(registry, sc);

    // Closed loop: four clients, each submitting its next frame only
    // after the previous one returned.
    std::atomic<int> next{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&server, &next, frames, size]() {
            for (int i = next.fetch_add(1); i < frames; i = next.fetch_add(1)) {
                serve::RenderRequest req;
                req.model = "bench";
                req.camera = orbitFrame(i, size);
                if (serve::isRejected(server.submit(req).get().outcome))
                    fatal("unloaded server rejected frame %d", i);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    server.shutdown();

    ThroughputPoint p{};
    p.threads = threads;
    p.fps = static_cast<double>(frames) / seconds;
    p.meanLatencyMs = server.stats().meanLatencyMs();
    p.meanBatchSize = server.stats().meanBatchSize();
    p.p50Ms = server.stats().p50LatencyMs();
    p.p95Ms = server.stats().p95LatencyMs();
    p.p99Ms = server.stats().p99LatencyMs();
    for (int i = 0; i < serve::kOutcomeCount; ++i)
        p.outcomes[i] =
            server.stats().count(static_cast<serve::Outcome>(i));
    if (metrics_out) {
        std::ostringstream os;
        obs::MetricsRegistry::global().exportPrometheus(os);
        *metrics_out = os.str();
    }
    return p;
}

/**
 * The tracing-overhead gate (--overhead-check): best-of-3 fps with the
 * tracer off vs fully on, identical workload. Returns the process exit
 * code: 1 when full tracing costs more than @p max_overhead_pct.
 */
int
runOverheadCheck(serve::ModelRegistry &registry, int frames, int size,
                 double max_overhead_pct)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    bench::banner("Tracing overhead: closed-loop fps, tracer off vs on");
    auto best_of_3 = [&](bool traced) {
        double best = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
            tracer.clear(); // keep span buffers from growing across reps
            tracer.setEnabled(traced);
            const ThroughputPoint p = measure(registry, 2, frames, size);
            best = std::max(best, p.fps);
        }
        tracer.setEnabled(false);
        return best;
    };
    // Warm-up run: touches every code path once so neither arm pays
    // first-run costs (page faults, lazy statics).
    measure(registry, 2, std::max(frames / 4, 4), size);
    const double fps_off = best_of_3(false);
    const double fps_on = best_of_3(true);
    const double overhead_pct =
        fps_on > 0.0 ? 100.0 * (fps_off - fps_on) / fps_off : 100.0;
    const bool ok = overhead_pct <= max_overhead_pct;
    std::printf("  tracer off: %8.2f frames/s (best of 3)\n", fps_off);
    std::printf("  tracer on:  %8.2f frames/s (best of 3)\n", fps_on);
    std::printf("  overhead:   %8.2f %% (max %.1f %%) -> %s\n", overhead_pct,
                max_overhead_pct, ok ? "ok" : "FAILED");
    bench::rule();
    std::printf("JSON: {\"bench\":\"serve_trace_overhead\",\"dispatch\":\"%s\","
                "\"resolution\":%d,"
                "\"frames\":%d,\"fps_off\":%.3f,\"fps_on\":%.3f,"
                "\"overhead_pct\":%.3f,\"max_overhead_pct\":%.1f,"
                "\"ok\":%s}\n",
                simd::dispatchName(), size, frames, fps_off, fps_on,
                overhead_pct, max_overhead_pct, ok ? "true" : "false");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    int frames = 24;
    int size = 48;
    std::string trace_path;
    std::string metrics_path;
    bool overhead_check = false;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (std::strcmp(argv[i], "--overhead-check") == 0) {
            overhead_check = true;
        } else if (positional == 0) {
            frames = std::atoi(argv[i]);
            ++positional;
        } else if (positional == 1) {
            size = std::atoi(argv[i]);
            ++positional;
        } else {
            fatal("usage: %s [frames] [resolution] [--trace FILE] "
                  "[--metrics FILE] [--overhead-check]",
                  argv[0]);
        }
    }

    if (!trace_path.empty())
        obs::Tracer::instance().setEnabled(true);

    nerf::NerfModelConfig mc;
    mc.grid.levels = 6;
    mc.grid.featuresPerLevel = 2;
    mc.grid.log2TableSize = 12;
    mc.grid.baseResolution = 8;
    mc.grid.maxResolution = 64;
    mc.geoFeatures = 7;
    mc.densityHidden = 16;
    mc.colorHidden = 16;
    mc.shDegree = 2;

    serve::ModelRegistry registry(/*occupancy_resolution=*/16);
    registry.add("bench", std::make_unique<nerf::NerfModel>(mc, 2024));

    if (overhead_check)
        return runOverheadCheck(registry, frames, size,
                                /*max_overhead_pct=*/5.0);

    bench::banner("Serving throughput: closed-loop frames/s vs render threads");
    std::printf("%-16s %12s %15s %11s %11s %11s %12s\n", "render threads",
                "frames/s", "mean lat (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                "mean batch");

    std::string metrics_text;
    std::vector<ThroughputPoint> points;
    for (const int threads : {1, 2, 4}) {
        points.push_back(measure(registry, threads, frames, size,
                                 threads == 4 && !metrics_path.empty()
                                     ? &metrics_text
                                     : nullptr));
        const ThroughputPoint &p = points.back();
        std::printf("%-16d %12.2f %15.2f %11.2f %11.2f %11.2f %12.2f\n",
                    p.threads, p.fps, p.meanLatencyMs, p.p50Ms, p.p95Ms,
                    p.p99Ms, p.meanBatchSize);
    }
    bench::rule();

    std::string json = "{\"bench\":\"serve_throughput\",\"dispatch\":\"" +
                       std::string(simd::dispatchName()) +
                       "\",\"resolution\":" + std::to_string(size) +
                       ",\"frames\":" + std::to_string(frames) + ",\"points\":[";
    char buf[256];
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ThroughputPoint &p = points[i];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"threads\":%d,\"fps\":%.3f,\"mean_latency_ms\":%.3f,"
                      "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
                      "\"outcomes\":{",
                      i ? "," : "", p.threads, p.fps, p.meanLatencyMs, p.p50Ms,
                      p.p95Ms, p.p99Ms);
        json += buf;
        for (int o = 0; o < serve::kOutcomeCount; ++o) {
            std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", o ? "," : "",
                          serve::outcomeName(static_cast<serve::Outcome>(o)),
                          static_cast<unsigned long long>(p.outcomes[o]));
            json += buf;
        }
        json += "}}";
    }
    std::snprintf(buf, sizeof(buf), "],\"speedup_4v1\":%.3f}",
                  points.back().fps / points.front().fps);
    json += buf;
    std::printf("JSON: %s\n", json.c_str());

    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out)
            fatal("cannot open trace file '%s'", trace_path.c_str());
        obs::Tracer::instance().writeChromeTrace(out);
        inform("wrote %zu trace spans to %s (%llu dropped)",
               obs::Tracer::instance().eventCount(), trace_path.c_str(),
               static_cast<unsigned long long>(
                   obs::Tracer::instance().dropped()));
    }
    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        if (!out)
            fatal("cannot open metrics file '%s'", metrics_path.c_str());
        out << metrics_text;
        inform("wrote metrics snapshot to %s", metrics_path.c_str());
    }
    return 0;
}
