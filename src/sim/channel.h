/**
 * @file
 * Bandwidth-limited transfer channels. Model both the off-chip USB-class
 * link (0.625 GB/s, the paper's hard constraint) and the PCB chip-to-chip
 * links of the multi-chip system (Sec. VI-B: 0.6 GB/s off-chip plus
 * 2.4 GB/s intra-system).
 */

#ifndef FUSION3D_SIM_CHANNEL_H_
#define FUSION3D_SIM_CHANNEL_H_

#include <string>

#include "common/types.h"
#include "sim/stats.h"

namespace fusion3d::sim
{

/** A half-duplex bandwidth-limited byte channel. */
class BandwidthChannel
{
  public:
    /**
     * @param name            Stat-group name.
     * @param bytes_per_second Sustained bandwidth.
     * @param latency_seconds Fixed per-transfer latency (protocol overhead).
     */
    BandwidthChannel(const std::string &name, double bytes_per_second,
                     double latency_seconds = 0.0);

    /**
     * Account a transfer of @p bytes.
     * @return Time the transfer occupies the channel, in seconds.
     */
    double transfer(Bytes bytes);

    double bandwidth() const { return bytes_per_second_; }
    Bytes totalBytes() const { return total_bytes_.value(); }
    std::uint64_t totalTransfers() const { return transfers_.value(); }
    /** Total busy time accumulated over all transfers, seconds. */
    double busySeconds() const { return busy_seconds_; }

    /** Minimum seconds needed to move @p bytes over this channel. */
    double secondsFor(Bytes bytes) const;

    void resetStats();
    StatGroup &stats() { return stats_; }

  private:
    double bytes_per_second_;
    double latency_seconds_;
    double busy_seconds_ = 0.0;
    StatGroup stats_;
    Counter &total_bytes_;
    Counter &transfers_;
};

} // namespace fusion3d::sim

#endif // FUSION3D_SIM_CHANNEL_H_
