/**
 * @file
 * Regenerates Fig. 11: normalized speedup and energy efficiency of the
 * single-chip accelerator versus the baseline devices on the eight
 * NeRF-Synthetic-style scenes (all values normalized to Jetson XNX,
 * the paper's common reference).
 */

#include <cstdio>
#include <vector>

#include "baselines/platforms.h"
#include "bench/bench_util.h"
#include "chip/chip.h"

using namespace fusion3d;

int
main(int argc, char **argv)
{
    const int trace_rays = argc > 1 ? std::atoi(argv[1]) : 1200;
    bench::banner("Fig. 11: per-scene normalized speedup / energy eff. (vs Jetson XNX)");

    const chip::Chip chip_model(chip::ChipConfig::scaledUp());
    const auto &xnx = baselines::platform("Jetson XNX");
    const auto &rtnerf = baselines::platform("RT-NeRF (Edge)");
    const auto &i3d = baselines::platform("Instant-3D");
    const auto &neurex = baselines::platform("NeuRex (Edge)");

    std::printf("%-11s | %9s %9s %9s | %9s %9s | %10s %10s\n", "Scene", "Ours inf",
                "RT-NeRF", "NeuRex", "Ours trn", "I3D trn", "Ours Einf",
                "Ours Etrn");
    bench::rule(96);

    for (const std::string &name : scenes::syntheticSceneNames()) {
        const auto scene = scenes::makeSyntheticScene(name);
        auto pipe = bench::pipelineForScene(*scene);
        const nerf::Camera cam = nerf::Camera::orbit({0.5f, 0.45f, 0.5f}, 1.4f, 35.0f,
                                                     22.0f, 45.0f, 800, 800);
        const chip::InferenceReport inf =
            chip_model.evaluateInference(*pipe, cam, trace_rays);

        // Normalized speedups: sampled-point throughput relative to
        // XNX's published rates; baseline accelerators are flat across
        // scenes (their papers report aggregate throughput).
        const double ours_inf = inf.perf.throughputPointsPerSec / 1e6;
        const double ours_trn = ours_inf / 3.0; // Table III ratio
        const double inf_speedup = ours_inf / *xnx.inferenceMpts;
        const double trn_speedup = ours_trn / *xnx.trainingMpts;
        const double einf = *xnx.inferenceEnergyNj / inf.perf.energyPerPointNj;
        const double etrn = *xnx.trainingEnergyNj / (inf.perf.energyPerPointNj * 3.0);

        std::printf("%-11s | %8.0fx %8.1fx %8.1fx | %8.0fx %8.1fx | %9.0fx %9.0fx\n",
                    name.c_str(), inf_speedup,
                    *rtnerf.inferenceMpts / *xnx.inferenceMpts,
                    *neurex.inferenceMpts / *xnx.inferenceMpts, trn_speedup,
                    *i3d.trainingMpts / *xnx.trainingMpts, einf, etrn);
        std::fflush(stdout);
    }
    bench::rule(96);
    std::printf("Paper (Sec. VI-C): all stages provisioned for ~47x inference and "
                "~76x training speedup vs XNX;\nours should exceed every baseline "
                "column on every scene.\n");
    return 0;
}
