/**
 * @file
 * Example: reconstruct a large (NeRF-360-style) scene with the
 * Mixture-of-Experts model and evaluate it on the four-chip system —
 * the paper's large-scale-scene scenario. Trains the MoE briefly,
 * renders a novel view, writes an expert-specialization map (Fig. 8),
 * and reports per-chip balance and chip-to-chip communication.
 *
 * Usage: multichip_large_scene [scene] [train_iters] [experts]
 */

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "multichip/system.h"
#include "nerf/moe.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

using namespace fusion3d;

int
main(int argc, char **argv)
{
    const std::string scene_name = argc > 1 ? argv[1] : "room";
    const int train_iters = argc > 2 ? std::atoi(argv[2]) : 200;
    const int experts = argc > 3 ? std::atoi(argv[3]) : 4;

    const auto scene = scenes::makeNerf360Scene(scene_name);
    inform("large scene '%s': fill %.1f%%", scene_name.c_str(),
           scene->occupiedFraction() * 100.0);

    scenes::DatasetConfig dc = scenes::nerf360Rig(32);
    dc.reference.steps = 128;
    const nerf::Dataset data = scenes::makeDataset(*scene, dc);

    nerf::MoeConfig mc;
    mc.numExperts = experts;
    mc.expert.model.grid.levels = 8;
    mc.expert.model.grid.log2TableSize = 14; // small experts (Fig. 13a)
    mc.expert.sampler.maxSamplesPerRay = 48;
    nerf::MoeNerf moe(mc);
    inform("MoE: %d experts, %zu parameters total", experts, moe.paramCount());

    nerf::TrainerConfig tc;
    tc.iterations = train_iters;
    tc.raysPerBatch = 128;
    tc.occupancyWarmup = std::max(train_iters / 3, 1);
    tc.occupancyUpdateEvery = 48;
    nerf::Trainer trainer(moe, data, tc);
    inform("training %d iterations ...", train_iters);
    const nerf::TrainResult tr = trainer.run();
    inform("functional PSNR: %.2f dB", tr.finalPsnr);

    // Expert-specialization map (Fig. 8): color each pixel by the
    // expert contributing the most light.
    const nerf::Camera cam = data.test.empty() ? data.train[0].camera
                                               : data.test[0].camera;
    Image expert_map(cam.width(), cam.height());
    const Vec3f palette[8] = {{1, 0.2f, 0.2f}, {0.2f, 1, 0.2f}, {0.2f, 0.4f, 1},
                              {1, 1, 0.2f},    {1, 0.2f, 1},    {0.2f, 1, 1},
                              {1, 0.6f, 0.2f}, {0.7f, 0.7f, 0.7f}};
    Pcg32 rng(5, 9);
    for (int y = 0; y < cam.height(); ++y) {
        for (int x = 0; x < cam.width(); ++x) {
            (void)moe.traceRay(cam.rayForPixel(x, y), rng, false);
            int best = -1;
            float best_lum = 1e-4f;
            for (int k = 0; k < moe.numExperts(); ++k) {
                const Vec3f c = moe.lastPartials()[static_cast<std::size_t>(k)].color;
                const float lum = c.x + c.y + c.z;
                if (lum > best_lum) {
                    best_lum = lum;
                    best = k;
                }
            }
            expert_map.at(x, y) = best >= 0 ? palette[best % 8] : Vec3f(0.0f);
        }
    }
    expert_map.writePpm("expert_map.ppm");
    inform("wrote expert_map.ppm (Fig. 8-style specialization map)");

    // Multi-chip evaluation.
    multichip::SystemConfig sc;
    sc.numChips = experts;
    const multichip::MultiChipSystem sys(sc);
    const nerf::Camera big = nerf::Camera::orbit({0.5f, 0.4f, 0.5f}, 0.38f, 45.0f,
                                                 12.0f, 70.0f, 800, 800);
    const auto result = sys.evaluateInference(moe, big, 1024);
    inform("--- %d-chip system on an 800x800 frame ---", experts);
    inform("frame time %.2f ms (%.1f FPS), %.1f W, %.1f mm^2",
           result.seconds * 1e3, 1.0 / result.seconds, sys.totalPowerW(),
           sys.totalAreaMm2());
    inform("workload balance (slowest/mean): %.3f", result.imbalance);
    for (int k = 0; k < experts; ++k) {
        inform("  chip %d: %8llu samples, %.2f ms", k,
               static_cast<unsigned long long>(
                   result.chips[static_cast<std::size_t>(k)].workload.validPoints),
               result.chips[static_cast<std::size_t>(k)].perf.seconds * 1e3);
    }
    inform("chip-to-chip traffic: %.2f MB (layer-split would need %.1f MB; saving "
           "%.1f%%)",
           result.moeCommBytes / 1e6, result.layerSplitCommBytes / 1e6,
           result.commSavingFraction() * 100.0);
    return 0;
}
