#include "common/image.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.h"

namespace fusion3d
{

Image::Image(int w, int h, const Vec3f &fill)
    : width_(w), height_(h),
      pixels_(static_cast<std::size_t>(w) * static_cast<std::size_t>(h), fill)
{
    if (w < 0 || h < 0)
        fatal("Image dimensions must be non-negative (got %d x %d)", w, h);
}

void
Image::fill(const Vec3f &c)
{
    for (auto &p : pixels_)
        p = c;
}

bool
Image::writePpm(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
    std::vector<unsigned char> row(static_cast<std::size_t>(width_) * 3);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            const Vec3f c = clamp(at(x, y), 0.0f, 1.0f);
            const float g = 1.0f / 2.2f;
            row[3 * x + 0] = static_cast<unsigned char>(std::pow(c.x, g) * 255.0f + 0.5f);
            row[3 * x + 1] = static_cast<unsigned char>(std::pow(c.y, g) * 255.0f + 0.5f);
            row[3 * x + 2] = static_cast<unsigned char>(std::pow(c.z, g) * 255.0f + 0.5f);
        }
        std::fwrite(row.data(), 1, row.size(), f);
    }
    std::fclose(f);
    return true;
}

double
mse(const Image &a, const Image &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        fatal("mse: image size mismatch (%dx%d vs %dx%d)",
              a.width(), a.height(), b.width(), b.height());
    if (a.pixelCount() == 0)
        return 0.0;
    double acc = 0.0;
    const auto &pa = a.pixels();
    const auto &pb = b.pixels();
    for (std::size_t i = 0; i < pa.size(); ++i) {
        const Vec3f d = pa[i] - pb[i];
        acc += static_cast<double>(d.x) * d.x + static_cast<double>(d.y) * d.y +
               static_cast<double>(d.z) * d.z;
    }
    return acc / (static_cast<double>(a.pixelCount()) * 3.0);
}

double
psnrFromMse(double mse_value)
{
    if (mse_value <= 0.0)
        return std::numeric_limits<double>::infinity();
    return -10.0 * std::log10(mse_value);
}

double
psnr(const Image &a, const Image &b)
{
    return psnrFromMse(mse(a, b));
}

} // namespace fusion3d
