/**
 * @file
 * Black-box flight recorder: a bounded ring of the most recent spans,
 * instants, and log lines, kept even when full tracing is disabled so
 * that when something goes wrong the immediate history is still there.
 *
 * Design:
 *  - each thread appends to its own fixed-size ring; a ring is guarded
 *    by its own mutex that is only ever contended by a snapshot reader
 *    (dump / test), so the hot path is an uncontended lock + a struct
 *    copy — cheap enough to leave on in production and TSan-clean by
 *    construction;
 *  - rings are registered centrally and owned for the process
 *    lifetime, so history from joined pool threads survives;
 *  - `triggerDump(reason)` captures a JSON snapshot of every ring
 *    (optionally writing `flight_<seq>_<reason>.json` under a dump
 *    directory) and is wired to the three failure signals: a fault
 *    point firing (common/fault), a serve worker throwing, and an SLO
 *    window breaching (obs/slo). Dumps are capped by setMaxDumps so a
 *    chaos storm cannot flood the disk.
 *
 * Entries reference the same static-string category/name literals as
 * the tracer; log lines are truncated into a fixed in-entry buffer so
 * recording never allocates.
 */

#ifndef FUSION3D_OBS_FLIGHT_RECORDER_H_
#define FUSION3D_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace fusion3d::obs
{

class MetricSink;

/** Process-wide recent-history ring. All methods are thread-safe. */
class FlightRecorder
{
  public:
    /** Entries each thread ring holds before overwriting the oldest. */
    static constexpr std::size_t kRingCapacity = 1024;
    /** Log-line text is truncated to this many bytes (incl. NUL). */
    static constexpr std::size_t kMaxLogText = 104;

    static FlightRecorder &instance();

    /** On by default. Disabling also clears the tracer's flight bit. */
    void setEnabled(bool on);
    bool enabled() const;

    /** Directory for auto-dump files ("" = snapshot in memory only). */
    void setDumpDir(std::string dir);

    /** Cap on auto-dumps per process (further triggers are counted). */
    void setMaxDumps(std::uint64_t n);

    /** Append a completed span/instant (called by Tracer::recordSpan). */
    void recordEvent(const TraceEvent &ev);

    /** Append a log line (called by common/logging). */
    void recordLog(const char *level, const char *text);

    /**
     * Capture a snapshot now and, when a dump dir is set, write it to
     * `flight_<seq>_<reason>.json`. Rate-limited by setMaxDumps; the
     * latest snapshot is retrievable via lastSnapshot().
     */
    void triggerDump(const std::string &reason);

    /** Serialize the ring contents as JSON (newest kRingCapacity per
     *  thread, ordered by start time). */
    void snapshotJson(std::ostream &os, const std::string &reason) const;

    std::uint64_t dumps() const;
    std::uint64_t suppressedDumps() const;
    std::string lastSnapshot() const;
    std::string lastReason() const;

    /** Total entries ever recorded (spans + instants + log lines). */
    std::uint64_t recorded() const;

    /** flight.* gauges/counters for a MetricsRegistry collector. */
    void collect(MetricSink &sink) const;

    /** Rewind rings and dump counters (tests; no concurrent writers). */
    void reset();

  private:
    struct Entry
    {
        const char *category = nullptr; ///< null for log entries
        const char *name = nullptr;
        std::uint64_t t0Ns = 0;
        std::uint64_t t1Ns = 0;
        std::uint64_t requestId = 0;
        std::uint64_t spanId = 0;
        std::uint64_t parentId = 0;
        std::uint64_t arg = 0;
        bool hasArg = false;
        bool isLog = false;
        char level[8] = {0};
        char text[kMaxLogText] = {0};
    };

    struct Ring
    {
        explicit Ring(std::uint32_t tid_) : tid(tid_)
        {
            slots.resize(kRingCapacity);
        }

        mutable std::mutex mutex;
        std::uint32_t tid;
        std::vector<Entry> slots;
        /** Total entries ever appended; valid slots = min(head, cap). */
        std::uint64_t head = 0;
    };

    FlightRecorder() = default;

    Ring &localRing();
    void append(const Entry &entry);

    mutable std::mutex registry_mutex_;
    std::vector<std::unique_ptr<Ring>> rings_;

    mutable std::mutex dump_mutex_;
    std::string dump_dir_;
    std::uint64_t max_dumps_ = 8;
    std::uint64_t dumps_ = 0;
    std::uint64_t suppressed_ = 0;
    std::string last_snapshot_;
    std::string last_reason_;
};

} // namespace fusion3d::obs

#endif // FUSION3D_OBS_FLIGHT_RECORDER_H_
