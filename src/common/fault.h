/**
 * @file
 * Seed-deterministic fault injection. Production code marks its failure
 * seams with F3D_FAULT_POINT("dotted.point.name"); a test (or a chaos
 * run of serve_loadgen) arms a FaultPlan — parsed from a spec string
 * like "serve.load.io=p0.1;trainer.ckpt.write=once;seed=42" — and the
 * marked seams start failing on a schedule that is a pure function of
 * the plan's seed and each point's check sequence. Replaying the same
 * plan against the same check sequence reproduces the same failures,
 * which is what lets the chaos suites assert exact outcomes in CI.
 *
 * Triggers per point:
 *  - "pX"     fire each check with probability X in [0, 1] (per-point
 *             PCG32 stream seeded from plan seed + point name, so the
 *             decision sequence is independent of other points);
 *  - "everyN" fire on every Nth check of this point (N >= 1);
 *  - "once"   fire on the first check only;
 *  - "always" fire on every check;
 *  - "off"    register the point (its checks are counted) but never fire.
 *
 * The checker is cheap when disarmed — one relaxed atomic load — and
 * compiles to a constant `false` under -DFUSION3D_FAULTS_DISABLED, so
 * release serving builds pay nothing. Checks and fires are counted per
 * point and exported through obs::MetricsRegistry ("fault.<point>.*");
 * each fire also drops a zero-duration "fault" span into the tracer, so
 * a chaos run is inspectable in Perfetto next to the serve spans.
 */

#ifndef FUSION3D_COMMON_FAULT_H_
#define FUSION3D_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"

namespace fusion3d
{

/** When an armed fault point fires. */
enum class FaultTrigger
{
    off,         ///< never fires (checks still counted)
    always,      ///< every check
    once,        ///< first check only
    everyNth,    ///< every Nth check (n below)
    probability, ///< each check with the probability below
};

/** One point's firing schedule. */
struct FaultRule
{
    FaultTrigger trigger = FaultTrigger::off;
    /** Fire probability for FaultTrigger::probability, in [0, 1]. */
    double probability = 0.0;
    /** Period for FaultTrigger::everyNth (>= 1). */
    std::uint64_t n = 1;
};

/** A full injection configuration: seed plus per-point rules. */
struct FaultPlan
{
    /** Seeds every point's probability stream (with the point name). */
    std::uint64_t seed = 1;
    std::map<std::string, FaultRule> rules;

    /**
     * Parse a spec string: ';'-separated "point=trigger" entries, where
     * trigger is p<float> | every<int> | once | always | off, plus the
     * reserved entry "seed=<uint>". Later entries for the same point
     * win. An empty spec is a valid empty plan.
     * @return false (and set @p error) on a malformed spec; @p out is
     *         only written on success.
     */
    static bool parse(const std::string &spec, FaultPlan &out, std::string &error);
};

/**
 * The process-wide injector. All methods are thread-safe; concurrent
 * shouldFail() calls on one point serialize, so each check consumes
 * exactly one slot of the point's deterministic decision sequence.
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Arm @p plan, replacing any previous one and zeroing counters. */
    void configure(const FaultPlan &plan);

    /**
     * Parse @p spec and configure(). On a malformed spec nothing is
     * armed; the diagnosis goes to *@p error when non-null.
     */
    bool configureFromSpec(const std::string &spec, std::string *error = nullptr);

    /** Disarm every point (checks return false again). */
    void reset();

    /** True when any rule is armed. */
    bool
    active() const
    {
        return active_.load(std::memory_order_relaxed);
    }

    /**
     * The check behind F3D_FAULT_POINT: true when the armed rule for
     * @p point says this check fails. Unarmed points return false after
     * one relaxed load. @p point must be a string literal (fires record
     * it as a trace-span name, which requires static storage duration).
     */
    bool shouldFail(const char *point);

    /** Checks seen by @p point since it was armed. */
    std::uint64_t checks(const std::string &point) const;

    /** Fires of @p point since it was armed. */
    std::uint64_t fires(const std::string &point) const;

    /** Total fires across all points. */
    std::uint64_t totalFires() const;

    /** Names of armed points, sorted. */
    std::vector<std::string> activePoints() const;

  private:
    FaultInjector() = default;

    struct PointState
    {
        FaultRule rule;
        Pcg32 rng;
        std::uint64_t checks = 0;
        std::uint64_t fires = 0;
    };

    std::atomic<bool> active_{false};
    mutable std::mutex mutex_;
    /** Transparent compare: shouldFail() looks up by const char *. */
    std::map<std::string, PointState, std::less<>> points_;
    bool metrics_registered_ = false; ///< guarded by mutex_
};

} // namespace fusion3d

#ifdef FUSION3D_FAULTS_DISABLED
/** Compiled out: a constant no-op the optimizer erases entirely. */
#define F3D_FAULT_POINT(point) (false)
#else
/** True when the armed fault plan fails the named seam on this check. */
#define F3D_FAULT_POINT(point)                                                 \
    (::fusion3d::FaultInjector::instance().shouldFail(point))
#endif

#endif // FUSION3D_COMMON_FAULT_H_
