#include "nerf/serialize.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace fusion3d::nerf
{

namespace
{

constexpr char kMagic[4] = {'F', '3', 'D', 'M'};
constexpr std::uint32_t kVersion = 1;

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::int32_t levels;
    std::int32_t featuresPerLevel;
    std::int32_t log2TableSize;
    std::int32_t baseResolution;
    std::int32_t maxResolution;
    std::int32_t geoFeatures;
    std::int32_t densityHidden;
    std::int32_t colorHidden;
    std::int32_t shDegree;
    std::uint64_t encodingParams;
    std::uint64_t densityParams;
    std::uint64_t colorParams;
};

bool
writeBlock(std::FILE *f, std::span<const float> data)
{
    return std::fwrite(data.data(), sizeof(float), data.size(), f) == data.size();
}

bool
readBlock(std::FILE *f, std::span<float> data)
{
    return std::fread(data.data(), sizeof(float), data.size(), f) == data.size();
}

} // namespace

bool
saveModel(const NerfModel &model, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;

    const NerfModelConfig &cfg = model.config();
    Header h{};
    std::memcpy(h.magic, kMagic, 4);
    h.version = kVersion;
    h.levels = cfg.grid.levels;
    h.featuresPerLevel = cfg.grid.featuresPerLevel;
    h.log2TableSize = cfg.grid.log2TableSize;
    h.baseResolution = cfg.grid.baseResolution;
    h.maxResolution = cfg.grid.maxResolution;
    h.geoFeatures = cfg.geoFeatures;
    h.densityHidden = cfg.densityHidden;
    h.colorHidden = cfg.colorHidden;
    h.shDegree = cfg.shDegree;
    h.encodingParams = model.encoding().paramCount();
    h.densityParams = model.densityNet().paramCount();
    h.colorParams = model.colorNet().paramCount();

    bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
    ok = ok && writeBlock(f, model.encoding().params());
    ok = ok && writeBlock(f, model.densityNet().params());
    ok = ok && writeBlock(f, model.colorNet().params());
    std::fclose(f);
    return ok;
}

const char *
loadStatusName(LoadStatus status)
{
    switch (status) {
      case LoadStatus::ok:
        return "ok";
      case LoadStatus::ioError:
        return "I/O error";
      case LoadStatus::badMagic:
        return "bad magic";
      case LoadStatus::badVersion:
        return "bad version";
      case LoadStatus::headerMismatch:
        return "header mismatch";
      case LoadStatus::truncated:
        return "truncated";
    }
    return "?";
}

namespace
{

LoadResult
loadFailure(LoadStatus status, std::string message)
{
    LoadResult r;
    r.status = status;
    r.message = std::move(message);
    return r;
}

/** Reject headers whose dimensions could not have come from saveModel()
 *  before they reach the NerfModel constructor (and its allocations). */
bool
headerDimensionsSane(const Header &h)
{
    return h.levels >= 1 && h.levels <= 64 && h.featuresPerLevel >= 1 &&
           h.featuresPerLevel <= 16 && h.log2TableSize >= 1 &&
           h.log2TableSize <= 28 && h.baseResolution >= 1 &&
           h.baseResolution <= h.maxResolution && h.maxResolution <= 65536 &&
           h.geoFeatures >= 1 && h.geoFeatures <= 256 && h.densityHidden >= 1 &&
           h.densityHidden <= 4096 && h.colorHidden >= 1 &&
           h.colorHidden <= 4096 && h.shDegree >= 1 && h.shDegree <= 4;
}

} // namespace

LoadResult
loadModelVerbose(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return loadFailure(LoadStatus::ioError,
                           strprintf("cannot open '%s'", path.c_str()));

    Header h{};
    if (std::fread(&h, sizeof(h), 1, f) != 1) {
        std::fclose(f);
        return loadFailure(
            LoadStatus::truncated,
            strprintf("'%s' is shorter than the %zu-byte header", path.c_str(),
                      sizeof(Header)));
    }
    if (std::memcmp(h.magic, kMagic, 4) != 0) {
        std::fclose(f);
        return loadFailure(LoadStatus::badMagic,
                           strprintf("'%s' is not an F3DM artifact", path.c_str()));
    }
    if (h.version != kVersion) {
        std::fclose(f);
        return loadFailure(LoadStatus::badVersion,
                           strprintf("'%s' has format version %u, expected %u",
                                     path.c_str(), h.version, kVersion));
    }
    if (!headerDimensionsSane(h)) {
        std::fclose(f);
        return loadFailure(
            LoadStatus::headerMismatch,
            strprintf("'%s' declares out-of-range model dimensions", path.c_str()));
    }

    NerfModelConfig cfg;
    cfg.grid.levels = h.levels;
    cfg.grid.featuresPerLevel = h.featuresPerLevel;
    cfg.grid.log2TableSize = h.log2TableSize;
    cfg.grid.baseResolution = h.baseResolution;
    cfg.grid.maxResolution = h.maxResolution;
    cfg.geoFeatures = h.geoFeatures;
    cfg.densityHidden = h.densityHidden;
    cfg.colorHidden = h.colorHidden;
    cfg.shDegree = h.shDegree;

    auto model = std::make_unique<NerfModel>(cfg);
    if (model->encoding().paramCount() != h.encodingParams ||
        model->densityNet().paramCount() != h.densityParams ||
        model->colorNet().paramCount() != h.colorParams) {
        std::fclose(f);
        return loadFailure(
            LoadStatus::headerMismatch,
            strprintf("parameter counts in '%s' do not match its declared "
                      "architecture",
                      path.c_str()));
    }

    bool ok = readBlock(f, model->encoding().params());
    ok = ok && readBlock(f, model->densityNet().params());
    ok = ok && readBlock(f, model->colorNet().params());
    std::fclose(f);
    if (!ok)
        return loadFailure(
            LoadStatus::truncated,
            strprintf("'%s' ends before its parameter blocks do", path.c_str()));

    LoadResult r;
    r.model = std::move(model);
    r.status = LoadStatus::ok;
    return r;
}

std::unique_ptr<NerfModel>
loadModel(const std::string &path)
{
    LoadResult r = loadModelVerbose(path);
    if (!r)
        warn("loadModel: %s: %s", loadStatusName(r.status), r.message.c_str());
    return std::move(r.model);
}

bool
loadInto(NerfModel &dst, const NerfModel &src)
{
    if (dst.encoding().paramCount() != src.encoding().paramCount() ||
        dst.densityNet().paramCount() != src.densityNet().paramCount() ||
        dst.colorNet().paramCount() != src.colorNet().paramCount()) {
        warn("loadInto: parameter-block sizes differ (dst %zu params, src %zu)",
             dst.paramCount(), src.paramCount());
        return false;
    }
    const auto copy_block = [](std::span<const float> from, std::span<float> to) {
        std::copy(from.begin(), from.end(), to.begin());
    };
    copy_block(src.encoding().params(), dst.encoding().params());
    copy_block(src.densityNet().params(), dst.densityNet().params());
    copy_block(src.colorNet().params(), dst.colorNet().params());
    return true;
}

std::size_t
modelFootprintBytes(const NerfModel &model, int bytes_per_param)
{
    return sizeof(Header) +
           model.paramCount() * static_cast<std::size_t>(bytes_per_param);
}

} // namespace fusion3d::nerf
