/**
 * @file
 * Functional model of the shared, reconfigurable interpolation array
 * (Technique T2-1, Fig. 6(b)). The same eight FIEM multipliers serve as
 *
 *  - a MAC tree in the forward pass:  out = sum_c w_c * f_c, and
 *  - a vector (scatter) multiplier in the backward pass:
 *    df_c = w_c * dout,
 *
 * i.e. the same computation graph with inverted edges. Interpolation
 * weights are fixed-point integers (Stage II computes them from the
 * fractional coordinates), which is exactly the FP x INT mix the FIEM
 * exists for.
 */

#ifndef FUSION3D_CHIP_INTERP_ARRAY_H_
#define FUSION3D_CHIP_INTERP_ARRAY_H_

#include <array>
#include <cstdint>

#include "common/half.h"

namespace fusion3d::chip
{

/** Fixed-point format of interpolation weights: unsigned Q0.8. */
struct QuantizedWeights
{
    std::array<std::uint8_t, 8> w{};
    /** Dequantization scale (1/255 for Q0.8). */
    static constexpr float kScale = 1.0f / 255.0f;
};

/** Quantize the eight trilinear weights (each in [0,1]) to Q0.8. */
QuantizedWeights quantizeWeights(const std::array<float, 8> &weights);

/** The reconfigurable array. */
class InterpArray
{
  public:
    /**
     * Forward (inference/training fwd) mode: MAC tree.
     * @return sum_c scale * w_c * f_c computed through FIEM multipliers.
     */
    static float forwardMacTree(const std::array<Half, 8> &features,
                                const QuantizedWeights &weights);

    /**
     * Backward (training) mode: scatter-multiply the upstream gradient
     * onto the eight vertices: df_c = scale * w_c * dout.
     */
    static std::array<float, 8> backwardScatter(Half dout,
                                                const QuantizedWeights &weights);
};

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_INTERP_ARRAY_H_
