/**
 * @file
 * Example: evaluate the Fusion-3D single-chip accelerator on a scene of
 * your choice — train the functional NeRF briefly, then characterize a
 * frame render and a training iteration on the cycle-level chip model,
 * comparing the tiled Stage-II memory system against the baseline and
 * the dynamic Stage-I scheduler against ray-serial dispatch.
 *
 * Usage: single_chip_eval [scene] [train_iters]
 */

#include <cstdio>
#include <string>

#include "chip/chip.h"
#include "common/logging.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

using namespace fusion3d;

int
main(int argc, char **argv)
{
    const std::string scene_name = argc > 1 ? argv[1] : "chair";
    const int train_iters = argc > 2 ? std::atoi(argv[2]) : 200;

    const auto scene = scenes::makeSyntheticScene(scene_name);
    inform("scene '%s': %.1f%% of the model cube occupied", scene_name.c_str(),
           scene->occupiedFraction() * 100.0);

    scenes::DatasetConfig dc = scenes::syntheticRig(32);
    dc.reference.steps = 128;
    const nerf::Dataset data = scenes::makeDataset(*scene, dc);

    nerf::PipelineConfig pc;
    pc.model.grid.levels = 8;
    pc.model.grid.log2TableSize = 14;
    pc.sampler.maxSamplesPerRay = 48;
    nerf::NerfPipeline pipeline(pc);

    nerf::TrainerConfig tc;
    tc.iterations = train_iters;
    tc.raysPerBatch = 160;
    nerf::Trainer trainer(pipeline, data, tc);
    inform("training %d iterations ...", train_iters);
    const nerf::TrainResult tr = trainer.run();
    inform("functional PSNR: %.2f dB (%.1f samples/ray)", tr.finalPsnr,
           tr.avgSamplesPerRay());

    const nerf::Camera cam =
        nerf::Camera::orbit({0.5f, 0.45f, 0.5f}, 1.4f, 30.0f, 22.0f, 45.0f, 800, 800);

    inform("--- single-chip accelerator, full configuration ---");
    const chip::Chip best(chip::ChipConfig::scaledUp());
    const chip::InferenceReport inf = best.evaluateInference(pipeline, cam, 2048);
    inform("800x800 render: %.1f FPS, %.0f M samples/s, %.2f nJ/sample", inf.fps,
           inf.perf.throughputPointsPerSec / 1e6, inf.perf.energyPerPointNj);
    inform("Stage II: %.2f cycles/group, %llu conflicts",
           inf.stage2.meanGroupLatency,
           static_cast<unsigned long long>(inf.stage2.conflicts));

    const chip::TrainingReport trn = best.evaluateTraining(pipeline, data, 4096);
    inform("training: %.0f M samples/s, %.2f nJ/sample",
           trn.perf.throughputPointsPerSec / 1e6, trn.perf.energyPerPointNj);

    inform("--- ablated configurations ---");
    const chip::Chip no_tiling(chip::ChipConfig::scaledUp(),
                               chip::BankPolicy::ModuloInterleave);
    const chip::InferenceReport inf_nt = no_tiling.evaluateInference(pipeline, cam, 2048);
    inform("without Level-2/3 tiling:  %.1f FPS (%.2f cycles/group, %llu conflicts)",
           inf_nt.fps, inf_nt.stage2.meanGroupLatency,
           static_cast<unsigned long long>(inf_nt.stage2.conflicts));

    const chip::Chip serial(chip::ChipConfig::scaledUp(),
                            chip::BankPolicy::TwoLevelTiling,
                            chip::SamplingSchedule::RaySerial);
    const chip::InferenceReport inf_rs = serial.evaluateInference(pipeline, cam, 2048);
    inform("with ray-serial Stage I:   %.1f FPS (Stage-I utilization %.0f%%)",
           inf_rs.fps, inf_rs.stage1.utilization(16) * 100.0);

    inform("full configuration is %.2fx faster than the worst ablation",
           std::max(inf_nt.perf.seconds, inf_rs.perf.seconds) / inf.perf.seconds);
    return 0;
}
