/**
 * @file
 * Cycle-level model of the Feature Interpolation Module (Stage II). It
 * plugs into the functional pipeline as a VertexVisitor: every real
 * hash-grid access the NeRF performs is replayed through the banked
 * SRAM model under a bank-mapping policy (baseline interleaving vs the
 * Level-2/3 tiling of Technique T4) and an interconnect (crossbar vs
 * the one-to-one wiring the tiling enables). This produces the latency,
 * variance, conflict and area numbers of Fig. 12(b)-(e).
 */

#ifndef FUSION3D_CHIP_INTERP_MODULE_H_
#define FUSION3D_CHIP_INTERP_MODULE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "chip/config.h"
#include "chip/hash_tiler.h"
#include "common/types.h"
#include "nerf/hash_encoding.h"
#include "sim/noc.h"
#include "sim/sram.h"

namespace fusion3d::chip
{

/** Aggregate Stage-II statistics of a replayed trace. */
struct InterpRunStats
{
    /** (point, level) access groups served. */
    std::uint64_t groups = 0;
    /** Total serialized group-service cycles (SRAM + interconnect). */
    std::uint64_t totalGroupCycles = 0;
    /** Total conflict (serialization) events. */
    std::uint64_t conflicts = 0;
    double meanGroupLatency = 0.0;
    double latencyVariance = 0.0;
    double maxGroupLatency = 0.0;

    /** Core-parallel cycle count for @p cores interpolation cores. */
    Cycles
    coreCycles(int cores) const
    {
        if (cores <= 0)
            return totalGroupCycles;
        return (totalGroupCycles + static_cast<std::uint64_t>(cores) - 1) /
               static_cast<std::uint64_t>(cores);
    }
};

/** Result of time-division multiplexing training and inference work
 *  through the shared Stage-II pipeline (Technique T2-1, Fig. 6(c)). */
struct TdmResult
{
    /** Cycles for the training groups alone (3-slot feature updates). */
    Cycles trainingCycles = 0;
    /** Cycles for the inference groups alone (no TDM). */
    Cycles inferenceAloneCycles = 0;
    /** Cycles when inference rides the training updates' idle slots. */
    Cycles tdmCycles = 0;
    /** Inference groups absorbed into idle slots at zero cost. */
    std::uint64_t inferenceAbsorbed = 0;

    /** Cycles saved vs running the two workloads back-to-back. */
    Cycles
    savedCycles() const
    {
        return trainingCycles + inferenceAloneCycles - tdmCycles;
    }
};

/**
 * Model the TDM co-schedule: each training feature update occupies its
 * SRAM bank for three slots (read, compute, write) and the compute slot
 * leaves the memory idle — one interleaved inference read slots in for
 * free. Remaining inference groups run afterwards at one slot each.
 */
TdmResult tdmCoSchedule(std::uint64_t train_groups, std::uint64_t infer_groups,
                        int cores);

/** Stage-II memory-system model; attach as the pipeline's VertexVisitor. */
class InterpModule : public nerf::VertexVisitor
{
  public:
    /**
     * @param cfg    Chip configuration (bank count per core).
     * @param policy Bank mapping under test.
     */
    InterpModule(const ChipConfig &cfg, BankPolicy policy);

    BankPolicy policy() const { return tiler_.policy(); }

    /** VertexVisitor hook: buffers the 8 corners of a group, then
     *  replays the group access through interconnect + SRAM. */
    void visit(int level, int corner, const Vec3i &coord, std::uint32_t index,
               bool dense) override;

    /** Statistics of everything replayed since the last reset. */
    InterpRunStats stats() const;

    /** The banked SRAM model (per-bank load, latency histogram). */
    const sim::Sram &sram() const { return sram_; }

    /** Interconnect area/latency profile of this configuration. */
    sim::InterconnectProfile interconnectProfile() const;

    void reset();

  private:
    void flushGroup();

    ChipConfig cfg_;
    HashTiler tiler_;
    sim::Sram sram_;
    std::unique_ptr<sim::Crossbar> crossbar_;       // baseline interconnect
    std::unique_ptr<sim::DirectConnect> direct_;    // tiled interconnect

    std::vector<std::uint32_t> pending_banks_;
    std::uint64_t total_group_cycles_ = 0;
    std::uint64_t groups_ = 0;
};

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_INTERP_MODULE_H_
