#include "serve/server_stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fusion3d::serve
{

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::renderedFull:
        return "rendered_full";
      case Outcome::renderedHalf:
        return "rendered_half";
      case Outcome::renderedWarp:
        return "rendered_warp";
      case Outcome::renderedReproject:
        return "rendered_reproject";
      case Outcome::rejectedQueueFull:
        return "rejected_queue_full";
      case Outcome::rejectedDeadline:
        return "rejected_deadline";
      case Outcome::rejectedUnknownModel:
        return "rejected_unknown_model";
      case Outcome::rejectedShutdown:
        return "rejected_shutdown";
      case Outcome::failedInternal:
        return "failed_internal";
      case Outcome::rejectedTenantQuota:
        return "rejected_tenant_quota";
    }
    return "?";
}

bool
isRejected(Outcome outcome)
{
    return outcome == Outcome::rejectedQueueFull ||
           outcome == Outcome::rejectedDeadline ||
           outcome == Outcome::rejectedUnknownModel ||
           outcome == Outcome::rejectedShutdown ||
           outcome == Outcome::rejectedTenantQuota ||
           outcome == Outcome::failedInternal;
}

ServerStats::ServerStats()
    : group_("serve"),
      submitted_(group_.addCounter("submitted")),
      latency_ms_(group_.addDistribution("latency_ms")),
      queue_depth_(group_.addDistribution("queue_depth_at_submit")),
      batch_size_(group_.addDistribution("batch_size")),
      latency_log2us_(group_.addHistogram("latency_log2_us")),
      latency_quantiles_(group_.addQuantiles("latency_ms")),
      session_hits_(group_.addCounter("session_hits")),
      session_misses_(group_.addCounter("session_misses")),
      reproject_fallbacks_(group_.addCounter("reproject_fallbacks")),
      rays_marched_(group_.addCounter("rays_marched")),
      rays_saved_(group_.addCounter("rays_saved")),
      reproject_tiles_pct_(group_.addDistribution("reproject_tiles_pct")),
      reproject_warp_ms_(group_.addDistribution("reproject_warp_ms"))
{
    for (int i = 0; i < kOutcomes; ++i) {
        const char *name = outcomeName(static_cast<Outcome>(i));
        outcomes_[i] = &group_.addCounter(name);
        outcome_latency_[i] =
            &group_.addQuantiles(std::string("latency_ms_") + name);
    }
}

ServerStats::~ServerStats()
{
    if (registry_)
        registry_->unregisterCollector(registered_name_);
}

void
ServerStats::recordSubmitted(std::size_t queue_depth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    submitted_.inc();
    queue_depth_.sample(static_cast<double>(queue_depth));
}

void
ServerStats::recordOutcome(Outcome outcome, double latency_ms, std::uint64_t id)
{
    const int idx = static_cast<int>(outcome);
    if (idx < 0 || idx >= kOutcomes)
        panic("ServerStats: outcome %d out of range", idx);
    std::lock_guard<std::mutex> lock(mutex_);
    outcomes_[idx]->inc();
    latency_ms_.sample(latency_ms);
    latency_quantiles_.sample(latency_ms);
    outcome_latency_[idx]->sample(latency_ms);
    if (latency_ms >= worst_ms_) {
        worst_ms_ = latency_ms;
        worst_id_ = id;
    }
    const double us = std::max(latency_ms * 1000.0, 1.0);
    latency_log2us_.sample(
        static_cast<std::uint64_t>(std::floor(std::log2(us))));
}

void
ServerStats::recordBatch(int size)
{
    std::lock_guard<std::mutex> lock(mutex_);
    batch_size_.sample(static_cast<double>(size));
}

void
ServerStats::recordSessionLookup(bool hit)
{
    std::lock_guard<std::mutex> lock(mutex_);
    (hit ? session_hits_ : session_misses_).inc();
}

void
ServerStats::recordReproject(const ReprojectStats &rs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    rays_marched_.inc(rs.raysRendered);
    rays_saved_.inc(rs.raysSaved);
    if (!rs.reprojected) {
        reproject_fallbacks_.inc();
        return;
    }
    if (rs.tilesTotal > 0)
        reproject_tiles_pct_.sample(100.0 * rs.tilesRerendered / rs.tilesTotal);
    reproject_warp_ms_.sample(rs.warpSeconds * 1e3);
}

void
ServerStats::recordRaysMarched(std::uint64_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    rays_marched_.inc(n);
}

ServerStats::TenantStats &
ServerStats::tenantSlotLocked(const std::string &tenant)
{
    const std::string &key = tenant.empty() ? std::string("default") : tenant;
    auto it = tenants_.find(key);
    if (it == tenants_.end())
        it = tenants_.emplace(key, std::make_unique<TenantStats>(key)).first;
    return *it->second;
}

void
ServerStats::recordTenant(const std::string &tenant, Outcome outcome,
                          double latency_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TenantStats &t = tenantSlotLocked(tenant);
    ++t.completed;
    if (isRejected(outcome)) {
        ++t.shed;
        if (outcome == Outcome::rejectedTenantQuota)
            ++t.quotaRejected;
    } else {
        ++t.rendered;
    }
    t.latency.sample(latency_ms);
}

std::vector<std::string>
ServerStats::tenantNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(tenants_.size());
    for (const auto &[name, t] : tenants_)
        out.push_back(name);
    return out;
}

std::uint64_t
ServerStats::tenantCompleted(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it =
        tenants_.find(tenant.empty() ? std::string("default") : tenant);
    return it == tenants_.end() ? 0 : it->second->completed;
}

std::uint64_t
ServerStats::tenantShed(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it =
        tenants_.find(tenant.empty() ? std::string("default") : tenant);
    return it == tenants_.end() ? 0 : it->second->shed;
}

std::uint64_t
ServerStats::tenantQuotaRejected(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it =
        tenants_.find(tenant.empty() ? std::string("default") : tenant);
    return it == tenants_.end() ? 0 : it->second->quotaRejected;
}

double
ServerStats::tenantLatencyQuantileMs(const std::string &tenant, double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it =
        tenants_.find(tenant.empty() ? std::string("default") : tenant);
    return it == tenants_.end() ? 0.0 : it->second->latency.quantile(q);
}

std::uint64_t
ServerStats::submitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_.value();
}

std::uint64_t
ServerStats::count(Outcome outcome) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return outcomes_[static_cast<int>(outcome)]->value();
}

std::uint64_t
ServerStats::completed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (int i = 0; i < kOutcomes; ++i)
        n += outcomes_[i]->value();
    return n;
}

std::uint64_t
ServerStats::degraded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return outcomes_[static_cast<int>(Outcome::renderedHalf)]->value() +
           outcomes_[static_cast<int>(Outcome::renderedWarp)]->value();
}

std::uint64_t
ServerStats::shed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return outcomes_[static_cast<int>(Outcome::rejectedQueueFull)]->value() +
           outcomes_[static_cast<int>(Outcome::rejectedDeadline)]->value() +
           outcomes_[static_cast<int>(Outcome::rejectedUnknownModel)]->value() +
           outcomes_[static_cast<int>(Outcome::rejectedShutdown)]->value() +
           outcomes_[static_cast<int>(Outcome::rejectedTenantQuota)]->value();
}

std::uint64_t
ServerStats::failed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return outcomes_[static_cast<int>(Outcome::failedInternal)]->value();
}

double
ServerStats::meanLatencyMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return latency_ms_.mean();
}

double
ServerStats::maxLatencyMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return latency_ms_.max();
}

double
ServerStats::meanBatchSize() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return batch_size_.mean();
}

std::uint64_t
ServerStats::sessionHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return session_hits_.value();
}

std::uint64_t
ServerStats::sessionMisses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return session_misses_.value();
}

std::uint64_t
ServerStats::reprojectFallbacks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reproject_fallbacks_.value();
}

std::uint64_t
ServerStats::raysMarched() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rays_marched_.value();
}

std::uint64_t
ServerStats::raysSaved() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rays_saved_.value();
}

double
ServerStats::meanWarpMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reproject_warp_ms_.mean();
}

double
ServerStats::latencyQuantileMs(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return latency_quantiles_.quantile(q);
}

double
ServerStats::outcomeLatencyQuantileMs(Outcome outcome, double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return outcome_latency_[static_cast<int>(outcome)]->quantile(q);
}

std::uint64_t
ServerStats::worstLatencyRequestId() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return worst_id_;
}

double
ServerStats::worstLatencyMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return worst_ms_;
}

void
ServerStats::dump(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    group_.dump(os);
}

void
ServerStats::collect(obs::MetricSink &sink) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    group_.collect(sink);
    sink.gauge("serve.worst_latency_ms", worst_ms_);
    sink.gauge("serve.worst_latency_request_id",
               static_cast<double>(worst_id_));
    for (const auto &[name, t] : tenants_) {
        const std::string prefix = "serve.tenant." + name + ".";
        sink.counter(prefix + "completed", t->completed);
        sink.counter(prefix + "rendered", t->rendered);
        sink.counter(prefix + "shed", t->shed);
        sink.counter(prefix + "quota_rejected", t->quotaRejected);
        sink.gauge(prefix + "latency_p50_ms", t->latency.quantile(0.50));
        sink.gauge(prefix + "latency_p99_ms", t->latency.quantile(0.99));
    }
}

void
ServerStats::registerWith(obs::MetricsRegistry &registry, const std::string &name)
{
    if (registry_)
        registry_->unregisterCollector(registered_name_);
    registry_ = &registry;
    registered_name_ = name;
    registry.registerCollector(
        name, [this](obs::MetricSink &sink) { collect(sink); });
}

} // namespace fusion3d::serve
