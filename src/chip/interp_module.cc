#include "chip/interp_module.h"

#include "common/logging.h"

namespace fusion3d::chip
{

namespace
{

sim::SramConfig
sramConfigFor(const ChipConfig &cfg)
{
    sim::SramConfig sc;
    sc.numBanks = static_cast<std::uint32_t>(cfg.sramBanksPerCore);
    // One 64 KB table pair split across the banks, 4-byte entries.
    sc.bytesPerWord = static_cast<std::uint32_t>(cfg.bytesPerVertexFeature);
    sc.wordsPerBank = (64u * 1024u * 2u) / (sc.numBanks * sc.bytesPerWord);
    return sc;
}

} // namespace

TdmResult
tdmCoSchedule(std::uint64_t train_groups, std::uint64_t infer_groups, int cores)
{
    if (cores < 1)
        fatal("tdmCoSchedule needs at least one core");
    const auto per_core = [cores](std::uint64_t slots) {
        return (slots + static_cast<std::uint64_t>(cores) - 1) /
               static_cast<std::uint64_t>(cores);
    };

    TdmResult r;
    r.trainingCycles = per_core(train_groups * 3);
    r.inferenceAloneCycles = per_core(infer_groups);
    // One idle compute slot per training update hosts one inference read.
    r.inferenceAbsorbed = std::min(train_groups, infer_groups);
    const std::uint64_t leftover = infer_groups - r.inferenceAbsorbed;
    r.tdmCycles = r.trainingCycles + per_core(leftover);
    return r;
}

InterpModule::InterpModule(const ChipConfig &cfg, BankPolicy policy)
    : cfg_(cfg),
      tiler_(policy, static_cast<std::uint32_t>(cfg.sramBanksPerCore)),
      sram_(sramConfigFor(cfg), "interp_sram")
{
    if (policy == BankPolicy::ModuloInterleave) {
        crossbar_ = std::make_unique<sim::Crossbar>(
            8, static_cast<std::uint32_t>(cfg.sramBanksPerCore), "interp_xbar");
    } else {
        if (cfg.sramBanksPerCore != 8)
            fatal("Two-level tiling requires exactly 8 banks (got %d)",
                  cfg.sramBanksPerCore);
        direct_ = std::make_unique<sim::DirectConnect>(8, "interp_direct");
    }
    pending_banks_.reserve(8);
}

void
InterpModule::visit(int level, int corner, const Vec3i &coord, std::uint32_t index,
                    bool dense)
{
    (void)level;
    (void)dense;
    const std::uint32_t bank = tiler_.bankOf(coord, index);

    if (tiler_.policy() == BankPolicy::TwoLevelTiling) {
        // The tiled mapping must be a bijection corner -> bank; the
        // DirectConnect wiring depends on it. Corner c = (dx, dy, dz)
        // reaches the bank of its (y-parity, z-parity, addr-parity), so
        // we route through port = bank to model the one-to-one wires.
        (void)corner;
    }

    pending_banks_.push_back(bank);
    if (pending_banks_.size() == 8)
        flushGroup();
}

void
InterpModule::flushGroup()
{
    Cycles cycles;
    if (tiler_.policy() == BankPolicy::ModuloInterleave) {
        // Crossbar arbitration + banked service; the SRAM model counts
        // the same serialization, so take the max (they overlap).
        const Cycles xbar = crossbar_->routeGroup(pending_banks_);
        const sim::SramAccessResult r = sram_.accessGroup(pending_banks_);
        cycles = std::max(xbar, r.cycles + crossbar_->profile().traversalLatency);
    } else {
        // One-to-one wiring: re-index ports so port i drives bank i.
        // The tiling guarantees all 8 banks are distinct.
        std::uint32_t sorted[8] = {0, 1, 2, 3, 4, 5, 6, 7};
        bool seen[8] = {};
        for (std::uint32_t b : pending_banks_) {
            if (b >= 8 || seen[b])
                panic("two-level tiling produced a bank collision (bank %u)", b);
            seen[b] = true;
        }
        const Cycles wire = direct_->routeGroup({sorted, 8});
        const sim::SramAccessResult r = sram_.accessGroup(pending_banks_);
        cycles = std::max(wire, r.cycles);
    }
    total_group_cycles_ += cycles;
    ++groups_;
    pending_banks_.clear();
}

InterpRunStats
InterpModule::stats() const
{
    InterpRunStats s;
    s.groups = groups_;
    s.totalGroupCycles = total_group_cycles_;
    s.conflicts = sram_.conflictCount();
    s.meanGroupLatency =
        groups_ ? static_cast<double>(total_group_cycles_) / static_cast<double>(groups_)
                : 0.0;
    // Latency variance of the raw SRAM group access (the interconnect
    // adds a constant, so the variance is the SRAM's).
    s.latencyVariance = sram_.latency().variance();
    s.maxGroupLatency = sram_.latency().max();
    return s;
}

sim::InterconnectProfile
InterpModule::interconnectProfile() const
{
    return crossbar_ ? crossbar_->profile() : direct_->profile();
}

void
InterpModule::reset()
{
    sram_.resetStats();
    pending_banks_.clear();
    total_group_cycles_ = 0;
    groups_ = 0;
}

} // namespace fusion3d::chip
