#include "nerf/tensorf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/quant.h"
#include "common/rng.h"
#include "nerf/sh_encoding.h"

namespace fusion3d::nerf
{

namespace
{

/** Numerically safe softplus and its derivative. */
float
softplus(float x)
{
    if (x > 15.0f)
        return x;
    if (x < -15.0f)
        return 0.0f;
    return std::log1p(std::exp(x));
}

float
softplusGrad(float x)
{
    if (x > 15.0f)
        return 1.0f;
    if (x < -15.0f)
        return 0.0f;
    const float e = std::exp(x);
    return e / (1.0f + e);
}

AdamConfig
adamFor(float lr)
{
    AdamConfig cfg;
    cfg.lr = lr;
    cfg.beta1 = 0.9f;
    cfg.beta2 = 0.99f;
    cfg.epsilon = 1e-15f;
    return cfg;
}

} // namespace

TensorfModel::TensorfModel(const TensorfModelConfig &cfg, std::uint64_t seed)
    : cfg_(cfg)
{
    if (cfg.densityRank < 1 || cfg.appearanceRank < 1 || cfg.lineResolution < 2)
        fatal("TensorfModel: invalid rank/resolution configuration");

    const std::size_t density_floats =
        3ull * cfg.densityRank * cfg.lineResolution;
    const std::size_t app_floats = 3ull * cfg.appearanceRank * cfg.lineResolution;
    const std::size_t basis_floats =
        static_cast<std::size_t>(cfg.appearanceDim) * cfg.appearanceRank;
    params_.resize(density_floats + app_floats + basis_floats);
    grads_.assign(params_.size(), 0.0f);

    Pcg32 rng(seed, 0x7f4a7c159e3779b9ULL);
    // Line factors start near a small positive constant so rank
    // products are non-degenerate; the basis starts small-random.
    for (std::size_t i = 0; i < density_floats + app_floats; ++i)
        params_[i] = 0.2f + 0.05f * rng.nextGaussian();
    for (std::size_t i = density_floats + app_floats; i < params_.size(); ++i)
        params_[i] = 0.1f * rng.nextGaussian();

    color_net_ = std::make_unique<Mlp>(
        std::vector<int>{cfg.appearanceDim + cfg.shDims(), cfg.colorHidden, 3},
        seed + 5);

    adam_factors_ = Adam(params_.size(), adamFor(2e-2f));
    adam_net_ = Adam(color_net_->paramCount(), adamFor(2e-3f));

    sh_.resize(static_cast<std::size_t>(cfg.shDims()));
    color_in_.resize(static_cast<std::size_t>(cfg.appearanceDim + cfg.shDims()));
    dcolor_out_.resize(3);
    app_prod_.resize(static_cast<std::size_t>(cfg.appearanceRank) * 3);
    color_ws_ = color_net_->makeWorkspace();
}

std::size_t
TensorfModel::densityOffset(int axis) const
{
    return static_cast<std::size_t>(axis) * cfg_.densityRank * cfg_.lineResolution;
}

std::size_t
TensorfModel::appearanceOffset(int axis) const
{
    return 3ull * cfg_.densityRank * cfg_.lineResolution +
           static_cast<std::size_t>(axis) * cfg_.appearanceRank * cfg_.lineResolution;
}

std::size_t
TensorfModel::basisOffset() const
{
    return 3ull * cfg_.densityRank * cfg_.lineResolution +
           3ull * cfg_.appearanceRank * cfg_.lineResolution;
}

namespace
{

/** Sample a line factor with linear interpolation. */
inline float
sampleLine(const float *line, int res, float u)
{
    const float x = std::clamp(u, 0.0f, 1.0f) * static_cast<float>(res - 1);
    const int i0 = std::min(static_cast<int>(x), res - 2);
    const float f = x - static_cast<float>(i0);
    return line[i0] * (1.0f - f) + line[i0 + 1] * f;
}

/** Scatter a gradient into the two supports of a line factor. */
inline void
scatterLine(float *gline, int res, float u, float g)
{
    const float x = std::clamp(u, 0.0f, 1.0f) * static_cast<float>(res - 1);
    const int i0 = std::min(static_cast<int>(x), res - 2);
    const float f = x - static_cast<float>(i0);
    gline[i0] += g * (1.0f - f);
    gline[i0 + 1] += g * f;
}

} // namespace

void
TensorfModel::lineBackward(std::size_t block_offset, int r, float u, float g)
{
    const int res = cfg_.lineResolution;
    scatterLine(grads_.data() + block_offset + static_cast<std::size_t>(r) * res, res,
                u, g);
}

float
TensorfModel::queryDensity(const Vec3f &pos)
{
    const int res = cfg_.lineResolution;
    float raw = 0.0f;
    for (int r = 0; r < cfg_.densityRank; ++r) {
        float prod = 1.0f;
        for (int axis = 0; axis < 3; ++axis) {
            const float *line = params_.data() + densityOffset(axis) +
                                static_cast<std::size_t>(r) * res;
            prod *= sampleLine(line, res, pos[axis]);
        }
        raw += prod;
    }
    raw_sigma_ = raw - cfg_.densityShift;
    return softplus(raw_sigma_) * cfg_.densityScale;
}

PointEval
TensorfModel::forwardPoint(const Vec3f &pos, const Vec3f &dir)
{
    PointEval pe;
    pe.sigma = queryDensity(pos);

    const int res = cfg_.lineResolution;
    // Appearance rank products, cached per axis for backward reuse.
    for (int r = 0; r < cfg_.appearanceRank; ++r) {
        for (int axis = 0; axis < 3; ++axis) {
            const float *line = params_.data() + appearanceOffset(axis) +
                                static_cast<std::size_t>(r) * res;
            app_prod_[static_cast<std::size_t>(r) * 3 + axis] =
                sampleLine(line, res, pos[axis]);
        }
    }

    const float *basis = params_.data() + basisOffset();
    for (int c = 0; c < cfg_.appearanceDim; ++c) {
        float acc = 0.0f;
        for (int r = 0; r < cfg_.appearanceRank; ++r) {
            const float prod = app_prod_[static_cast<std::size_t>(r) * 3] *
                               app_prod_[static_cast<std::size_t>(r) * 3 + 1] *
                               app_prod_[static_cast<std::size_t>(r) * 3 + 2];
            acc += basis[static_cast<std::size_t>(c) * cfg_.appearanceRank + r] * prod;
        }
        color_in_[static_cast<std::size_t>(c)] = acc;
    }
    shEncode(dir, cfg_.shDegree, sh_);
    for (int i = 0; i < cfg_.shDims(); ++i)
        color_in_[static_cast<std::size_t>(cfg_.appearanceDim + i)] =
            sh_[static_cast<std::size_t>(i)];

    const std::span<const float> out = color_net_->forward(color_in_, color_ws_);
    for (int i = 0; i < 3; ++i) {
        const float r = out[static_cast<std::size_t>(i)];
        pe.rgb.at(i) = r >= 0.0f ? 1.0f / (1.0f + std::exp(-r))
                                 : std::exp(r) / (1.0f + std::exp(r));
    }
    return pe;
}

void
TensorfModel::backwardPoint(const Vec3f &pos, const Vec3f &dir, float dsigma,
                            const Vec3f &drgb)
{
    const PointEval pe = forwardPoint(pos, dir); // recompute caches
    const int res = cfg_.lineResolution;

    // --- Color path ---
    for (int i = 0; i < 3; ++i) {
        const float s = pe.rgb[i];
        dcolor_out_[static_cast<std::size_t>(i)] = drgb[i] * s * (1.0f - s);
    }
    color_net_->backward(dcolor_out_, color_ws_);

    // d(features): the color net's input gradient feeds basis + lines.
    const float *basis = params_.data() + basisOffset();
    float *gbasis = grads_.data() + basisOffset();
    for (int r = 0; r < cfg_.appearanceRank; ++r) {
        const float px = app_prod_[static_cast<std::size_t>(r) * 3];
        const float py = app_prod_[static_cast<std::size_t>(r) * 3 + 1];
        const float pz = app_prod_[static_cast<std::size_t>(r) * 3 + 2];
        const float prod = px * py * pz;
        float dprod = 0.0f;
        for (int c = 0; c < cfg_.appearanceDim; ++c) {
            const float dfeat = color_ws_.dinput[static_cast<std::size_t>(c)];
            gbasis[static_cast<std::size_t>(c) * cfg_.appearanceRank + r] +=
                dfeat * prod;
            dprod += dfeat * basis[static_cast<std::size_t>(c) * cfg_.appearanceRank + r];
        }
        // Product rule into each axis line.
        lineBackward(appearanceOffset(0), r, pos.x, dprod * py * pz);
        lineBackward(appearanceOffset(1), r, pos.y, dprod * px * pz);
        lineBackward(appearanceOffset(2), r, pos.z, dprod * px * py);
    }

    // --- Density path ---
    const float draw = dsigma * cfg_.densityScale * softplusGrad(raw_sigma_);
    for (int r = 0; r < cfg_.densityRank; ++r) {
        float axis_val[3];
        for (int axis = 0; axis < 3; ++axis) {
            const float *line = params_.data() + densityOffset(axis) +
                                static_cast<std::size_t>(r) * res;
            axis_val[axis] = sampleLine(line, res, pos[axis]);
        }
        lineBackward(densityOffset(0), r, pos.x, draw * axis_val[1] * axis_val[2]);
        lineBackward(densityOffset(1), r, pos.y, draw * axis_val[0] * axis_val[2]);
        lineBackward(densityOffset(2), r, pos.z, draw * axis_val[0] * axis_val[1]);
    }
}

void
TensorfModel::zeroGrads()
{
    std::fill(grads_.begin(), grads_.end(), 0.0f);
    color_net_->zeroGrads();
}

void
TensorfModel::optimizerStep(float lr_factors, float lr_net)
{
    adam_factors_.setLearningRate(lr_factors);
    adam_net_.setLearningRate(lr_net);
    adam_factors_.step(params_, grads_);
    adam_net_.step(color_net_->params(), color_net_->grads());
}

void
TensorfModel::quantizeWeights()
{
    fakeQuantizeInPlace(params_);
    fakeQuantizeInPlace(color_net_->params());
}

std::size_t
TensorfModel::paramCount() const
{
    return params_.size() + color_net_->paramCount();
}

} // namespace fusion3d::nerf
