#include "nerf/sampler.h"

#include <algorithm>
#include <cmath>

namespace fusion3d::nerf
{

namespace
{

constexpr float kSqrt3 = 1.7320508075688772f;

} // namespace

int
RaySampler::sample(const Ray &ray, const OccupancyGrid *grid, Pcg32 &rng,
                   std::vector<RaySample> &out, RayWorkload *workload) const
{
    out.clear();
    if (workload) {
        workload->pairs.clear();
        workload->totalCandidates = 0;
        workload->totalValid = 0;
        workload->ddaSteps = 0;
        workload->intersectionOps.reset();
    }

    OpCounter *ops = workload ? &workload->intersectionOps : nullptr;

    // Whole-cube span first; rays that miss the model produce no work.
    std::optional<RaySpan> span;
    if (cfg_.normalized) {
        span = Aabb::intersectUnitCube(ray, ops);
    } else {
        span = Aabb::unitCube().intersectGeneric(ray, ops);
    }
    if (!span || span->t1 <= std::max(span->t0, 0.0f))
        return 0;

    const float dt = kSqrt3 / static_cast<float>(cfg_.maxSamplesPerRay);
    const float jitter = cfg_.jitter ? rng.nextFloat() : 0.5f;

    // DDA skip mode: pre-compute the occupied intervals so empty space
    // never reaches the marching loop.
    std::vector<OccupancyGrid::Interval> dda_intervals;
    const bool use_dda = cfg_.ddaSkip && grid != nullptr;
    if (use_dda) {
        int steps = 0;
        grid->traverse(ray, std::max(span->t0, 0.0f), span->t1, dda_intervals,
                       &steps);
        if (workload)
            workload->ddaSteps = steps;
    }
    // The march visits t in non-decreasing order (octant spans are
    // disjoint and sorted by entry t), so a cursor into the sorted
    // interval list replaces the front-to-back rescan per sample.
    std::size_t dda_cursor = 0;
    const auto in_dda = [&dda_intervals, &dda_cursor](float t) {
        while (dda_cursor < dda_intervals.size() &&
               t > dda_intervals[dda_cursor].t1)
            ++dda_cursor;
        return dda_cursor < dda_intervals.size() &&
               t >= dda_intervals[dda_cursor].t0;
    };

    // Sampling spans, one per valid ray-cube pair when partitioning.
    struct OctSpan
    {
        int octant;
        float t0, t1;
    };
    OctSpan spans[8];
    int span_count = 0;

    if (cfg_.partition) {
        for (int oct = 0; oct < 8; ++oct) {
            std::optional<RaySpan> s;
            if (cfg_.normalized) {
                s = Aabb::intersectOctant(ray, oct, ops);
            } else {
                const Vec3f lo{(oct & 1) ? 0.5f : 0.0f, (oct & 2) ? 0.5f : 0.0f,
                               (oct & 4) ? 0.5f : 0.0f};
                const Aabb box(lo, lo + Vec3f(0.5f));
                s = box.intersectGeneric(ray, ops);
            }
            if (s && s->t1 > std::max(s->t0, 0.0f))
                spans[span_count++] = {oct, std::max(s->t0, 0.0f), s->t1};
        }
        // The ray visits octants in increasing entry order. Insertion
        // sort: at most eight entries, and it sidesteps a GCC
        // -Warray-bounds false positive with std::sort on fixed arrays.
        for (int i = 1; i < span_count; ++i) {
            const OctSpan key = spans[i];
            int j = i - 1;
            while (j >= 0 && spans[j].t0 > key.t0) {
                spans[j + 1] = spans[j];
                --j;
            }
            spans[j + 1] = key;
        }
    } else {
        spans[span_count++] = {0, std::max(span->t0, 0.0f), span->t1};
    }

    for (int s = 0; s < span_count; ++s) {
        const OctSpan &os = spans[s];
        RayCubePair pair;
        pair.octant = os.octant;

        // March on the global step lattice so partitioning does not
        // change the sample positions, only who produces them.
        const float first_k = std::ceil((os.t0 - jitter * dt) / dt - 1e-6f);
        for (float k = std::max(first_k, 0.0f);; k += 1.0f) {
            const float t = (k + jitter) * dt;
            if (t >= os.t1)
                break;
            if (t < os.t0)
                continue;
            const Vec3f p = ray.at(t);
            if (cfg_.partition) {
                // Octant spans share boundary faces; assign each lattice
                // point to exactly one owner so rays on octant faces are
                // not sampled by several cores.
                const int owner = (p.x >= 0.5f ? 1 : 0) | (p.y >= 0.5f ? 2 : 0) |
                                  (p.z >= 0.5f ? 4 : 0);
                if (owner != os.octant)
                    continue;
            }
            if (use_dda && !in_dda(t))
                continue; // skipped wholesale by the DDA walk
            ++pair.candidates;
            if (!grid || grid->occupiedAt(clamp(p, 0.0f, 1.0f))) {
                ++pair.valid;
                out.push_back({p, t, dt});
            }
        }

        if (workload && pair.candidates > 0) {
            workload->pairs.push_back(pair);
            workload->totalCandidates += pair.candidates;
            workload->totalValid += pair.valid;
        }
    }

    return static_cast<int>(out.size());
}

} // namespace fusion3d::nerf
