#include "serve/request_queue.h"

#include <algorithm>

#include "common/logging.h"

namespace fusion3d::serve
{

namespace
{

/** Strict queue order: priority desc, deadline asc. Arrival order is
 *  preserved by inserting *after* all equivalent entries. */
bool
before(const QueuedRequest &a, const QueuedRequest &b)
{
    if (a.request.priority != b.request.priority)
        return a.request.priority > b.request.priority;
    return a.request.deadline < b.request.deadline;
}

} // namespace

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity)
{
    if (capacity == 0)
        fatal("RequestQueue: capacity must be positive");
}

bool
RequestQueue::push(QueuedRequest &&qr)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        // Insertion sort from the back: typical traffic is same-priority
        // FIFO, where this is O(1).
        auto it = items_.end();
        while (it != items_.begin()) {
            auto prev = std::prev(it);
            if (!before(qr, *prev))
                break;
            it = prev;
        }
        items_.insert(it, std::move(qr));
    }
    nonempty_.notify_one();
    return true;
}

bool
RequestQueue::popBatch(std::vector<QueuedRequest> &out, int max_batch)
{
    out.clear();
    max_batch = std::max(max_batch, 1);

    std::unique_lock<std::mutex> lock(mutex_);
    nonempty_.wait(lock, [this]() { return closed_ || !items_.empty(); });
    if (items_.empty())
        return false; // closed and drained

    out.push_back(std::move(items_.front()));
    items_.pop_front();

    // Batch compatible (same-model) requests, preserving queue order.
    // (By value: growing `out` would invalidate a reference into it.)
    const std::string model = out.front().request.model;
    for (auto it = items_.begin();
         it != items_.end() && static_cast<int>(out.size()) < max_batch;) {
        if (it->request.model == model) {
            out.push_back(std::move(*it));
            it = items_.erase(it);
        } else {
            ++it;
        }
    }
    return true;
}

std::size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    nonempty_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

} // namespace fusion3d::serve
