#include "serve/request_queue.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fusion3d::serve
{

namespace
{

/** Strict queue order: priority desc, deadline asc. Arrival order is
 *  preserved by inserting *after* all equivalent entries. */
bool
before(const QueuedRequest &a, const QueuedRequest &b)
{
    if (a.request.priority != b.request.priority)
        return a.request.priority > b.request.priority;
    return a.request.deadline < b.request.deadline;
}

double
effectivePriority(const QueuedRequest &qr, double aging_per_second,
                  Clock::time_point now)
{
    const double waited =
        std::chrono::duration<double>(now - qr.enqueued).count();
    return static_cast<double>(qr.request.priority) +
           aging_per_second * std::max(waited, 0.0);
}

} // namespace

RequestQueue::RequestQueue(std::size_t capacity)
    : RequestQueue([&] {
          QueueConfig cfg;
          cfg.capacity = capacity;
          return cfg;
      }())
{
}

RequestQueue::RequestQueue(const QueueConfig &cfg) : cfg_(cfg)
{
    if (cfg_.capacity == 0)
        fatal("RequestQueue: capacity must be positive");
    if (cfg_.qos.maxQueueShare <= 0.0 || cfg_.qos.maxQueueShare > 1.0)
        fatal("RequestQueue: maxQueueShare must be in (0, 1], got %g",
              cfg_.qos.maxQueueShare);
    if (cfg_.qos.maxInFlightPerTenant < 0)
        fatal("RequestQueue: maxInFlightPerTenant must be >= 0, got %d",
              cfg_.qos.maxInFlightPerTenant);
    if (cfg_.qos.agingPriorityPerSecond < 0.0)
        fatal("RequestQueue: agingPriorityPerSecond must be >= 0, got %g",
              cfg_.qos.agingPriorityPerSecond);
}

bool
RequestQueue::tenantAtCapLocked(const std::string &tenant) const
{
    if (cfg_.qos.maxInFlightPerTenant <= 0)
        return false;
    const auto it = tenant_inflight_.find(tenant);
    return it != tenant_inflight_.end() &&
           it->second >=
               static_cast<std::size_t>(cfg_.qos.maxInFlightPerTenant);
}

bool
RequestQueue::dispatchableLocked() const
{
    if (cfg_.qos.maxInFlightPerTenant <= 0)
        return !items_.empty();
    for (const auto &qr : items_)
        if (!tenantAtCapLocked(qr.request.tenant))
            return true;
    return false;
}

PushResult
RequestQueue::push(QueuedRequest &&qr)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return PushResult::closed;
        if (items_.size() >= cfg_.capacity)
            return PushResult::queueFull;
        if (cfg_.qos.maxQueueShare < 1.0) {
            // Queue-share quota: one tenant may hold at most
            // share * capacity slots (never below one, so a lone
            // tenant always admits into an empty queue).
            const auto limit = std::max<std::size_t>(
                1, static_cast<std::size_t>(cfg_.qos.maxQueueShare *
                                            static_cast<double>(cfg_.capacity)));
            if (tenant_queued_[qr.request.tenant] >= limit)
                return PushResult::tenantQuota;
        }
        ++tenant_queued_[qr.request.tenant];
        // Insertion sort from the back: typical traffic is same-priority
        // FIFO, where this is O(1).
        auto it = items_.end();
        while (it != items_.begin()) {
            auto prev = std::prev(it);
            if (!before(qr, *prev))
                break;
            it = prev;
        }
        items_.insert(it, std::move(qr));
    }
    nonempty_.notify_one();
    return PushResult::ok;
}

bool
RequestQueue::popBatch(std::vector<QueuedRequest> &out, int max_batch)
{
    out.clear();
    max_batch = std::max(max_batch, 1);

    std::unique_lock<std::mutex> lock(mutex_);
    nonempty_.wait(lock, [this]() { return closed_ || dispatchableLocked(); });
    if (items_.empty())
        return false; // closed and drained

    // Closed while every queued tenant is at its cap (only way the
    // wait predicate passes without a dispatchable item): drain in
    // plain queue order — the scheduler is shedding, not rendering,
    // so the caps no longer bound concurrency.
    const bool draining = closed_ && !dispatchableLocked();

    // Select the head: the dispatchable request with the highest
    // effective priority. Without aging that is simply the first
    // under-cap item in (already sorted) queue order; with aging an
    // O(n) scan applies the wait-time bonus, which is how a starved
    // low-priority tenant eventually overtakes a fresh high-priority
    // stream. Ties keep queue order (scan takes strictly-greater).
    const double aging = cfg_.qos.agingPriorityPerSecond;
    auto head = items_.end();
    if (aging > 0.0) {
        const Clock::time_point now = Clock::now();
        double best = 0.0;
        for (auto it = items_.begin(); it != items_.end(); ++it) {
            if (!draining && tenantAtCapLocked(it->request.tenant))
                continue;
            const double p = effectivePriority(*it, aging, now);
            if (head == items_.end() || p > best) {
                head = it;
                best = p;
            }
        }
    } else {
        for (auto it = items_.begin(); it != items_.end(); ++it) {
            if (draining || !tenantAtCapLocked(it->request.tenant)) {
                head = it;
                break;
            }
        }
    }
    if (head == items_.end())
        return false; // unreachable; defensive against predicate drift

    auto take = [&](std::list<QueuedRequest>::iterator it) {
        auto &queued = tenant_queued_[it->request.tenant];
        if (queued > 0)
            --queued;
        ++tenant_inflight_[it->request.tenant];
        out.push_back(std::move(*it));
        out.back().tenantSlot = true;
        return items_.erase(it);
    };

    const std::string model = head->request.model;
    take(head);

    // Batch compatible (same-model) requests, preserving queue order
    // and charging tenant in-flight slots as they are taken, so one
    // batch cannot blow through a tenant's cap either.
    for (auto it = items_.begin();
         it != items_.end() && static_cast<int>(out.size()) < max_batch;) {
        if (it->request.model == model &&
            (draining || !tenantAtCapLocked(it->request.tenant))) {
            it = take(it);
        } else {
            ++it;
        }
    }
    return true;
}

void
RequestQueue::release(const std::string &tenant)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = tenant_inflight_.find(tenant);
        if (it == tenant_inflight_.end() || it->second == 0)
            return; // release without a matching pop: ignore
        --it->second;
    }
    // A popBatch may be blocked precisely on this tenant's cap.
    nonempty_.notify_all();
}

std::size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

std::size_t
RequestQueue::tenantQueued(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tenant_queued_.find(tenant);
    return it == tenant_queued_.end() ? 0 : it->second;
}

std::size_t
RequestQueue::tenantInFlight(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tenant_inflight_.find(tenant);
    return it == tenant_inflight_.end() ? 0 : it->second;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    nonempty_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

} // namespace fusion3d::serve
