/**
 * @file
 * Binary model serialization. The paper's deployment story leans on the
 * small NeRF footprint (~10 MB) for transmission over the bandwidth-
 * constrained edge link; this is the writer/reader for that artifact.
 *
 * Format (little-endian): magic "F3DM", u32 version, the HashGridConfig
 * and MLP dimensions, then the three parameter blocks as raw float32.
 */

#ifndef FUSION3D_NERF_SERIALIZE_H_
#define FUSION3D_NERF_SERIALIZE_H_

#include <memory>
#include <string>

#include "nerf/nerf_model.h"

namespace fusion3d::nerf
{

/** Serialize @p model to @p path. @return true on success. */
bool saveModel(const NerfModel &model, const std::string &path);

/**
 * Load a model saved by saveModel().
 * @return nullptr on I/O error, bad magic/version, or config mismatch
 *         between the header and the stored parameter counts.
 */
std::unique_ptr<NerfModel> loadModel(const std::string &path);

/** On-disk footprint of a model at the given parameter width. */
std::size_t modelFootprintBytes(const NerfModel &model, int bytes_per_param = 4);

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_SERIALIZE_H_
