/**
 * @file
 * Multiresolution hash-grid encoding (Instant-NGP, Mueller et al. 2022),
 * the Stage-II workload of the Fusion-3D pipeline. Each query point is
 * trilinearly interpolated from the eight nearest vertices of every
 * level; coarse levels index densely, fine levels through the spatial
 * hash with primes (1, 2654435761, 805459861).
 *
 * Two properties of this addressing are load-bearing for the paper's
 * Technique T4 and are asserted by tests:
 *  - vertices that differ by +1 in x map to addresses of opposite parity
 *    (all non-x primes are odd and the x stride is 1);
 *  - the four YZ-offset pairs of a corner group land far apart in the
 *    table (large y/z multipliers).
 */

#ifndef FUSION3D_NERF_HASH_ENCODING_H_
#define FUSION3D_NERF_HASH_ENCODING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/quant.h"
#include "common/vec.h"

namespace fusion3d::nerf
{

/** Static configuration of the multiresolution hash grid. */
struct HashGridConfig
{
    /** Number of resolution levels (paper/NGP default 16; we default 8). */
    int levels = 8;
    /** Feature channels per level (NGP default 2). */
    int featuresPerLevel = 2;
    /** log2 of the per-level hash-table entry count. */
    int log2TableSize = 14;
    /** Coarsest grid resolution. */
    int baseResolution = 16;
    /** Finest grid resolution. */
    int maxResolution = 128;

    int encodedDims() const { return levels * featuresPerLevel; }
    std::uint32_t tableSize() const { return 1u << log2TableSize; }
};

/**
 * Observer of the per-corner memory accesses performed by one encode()
 * call. The chip model implements this to drive the banked-SRAM and
 * hash-tiling simulations from real access traces.
 */
class VertexVisitor
{
  public:
    virtual ~VertexVisitor() = default;

    /**
     * One vertex-feature access.
     * @param level  Grid level.
     * @param corner Corner index 0..7; bit0 = +x, bit1 = +y, bit2 = +z.
     * @param coord  Integer vertex coordinate at this level.
     * @param index  Table entry index within the level (pre-feature-dim).
     * @param dense  True if the level indexes densely (no hashing).
     */
    virtual void visit(int level, int corner, const Vec3i &coord,
                       std::uint32_t index, bool dense) = 0;
};

/**
 * Per-shard sparse gradient accumulator for parallel training. Each
 * worker scatters its shard's hash-grid gradients here instead of into
 * the shared gradient vector: a dense zero-initialized scratch the size
 * of the parameter vector plus, per level, the list of table entries the
 * shard actually touched (in first-touch order). Shards are then merged
 * into the real gradients in a fixed level-major, shard-ascending order
 * (HashGridEncoding::mergeGradShards), which keeps training bitwise
 * reproducible at any thread count — the property atomics cannot give,
 * since atomic float adds commit in scheduling order. Buffers are
 * allocated once and reused; merging re-zeroes only the touched entries.
 */
class HashGradAccumulator
{
  public:
    /** True if nothing has been accumulated since the last merge. */
    bool empty() const { return total_touched_ == 0; }

    /** Entries touched since the last merge (across all levels). */
    std::size_t touchedEntries() const { return total_touched_; }

  private:
    friend class HashGridEncoding;
    /** Dense [paramCount] scratch; all-zero outside touched entries. */
    std::vector<float> acc_;
    /** One first-touch flag per table entry (all levels concatenated). */
    std::vector<std::uint8_t> seen_;
    /** Per level: touched entry indices, in first-touch order. */
    std::vector<std::vector<std::uint32_t>> touched_;
    std::size_t total_touched_ = 0;
};

/** Trainable multiresolution hash grid. */
class HashGridEncoding
{
  public:
    explicit HashGridEncoding(const HashGridConfig &cfg, std::uint64_t seed = 1);

    const HashGridConfig &config() const { return cfg_; }

    /** Grid resolution of @p level. */
    int resolution(int level) const { return resolutions_[level]; }

    /** True if @p level stores a dense grid rather than a hash table. */
    bool isDense(int level) const { return dense_[level]; }

    /** Number of feature entries (not floats) stored for @p level. */
    std::uint32_t levelEntries(int level) const { return entries_[level]; }

    /**
     * The Instant-NGP spatial hash of a vertex coordinate.
     * @param c     Vertex coordinate.
     * @param mask  tableSize-1 (table size must be a power of two).
     */
    static std::uint32_t
    hashCoords(const Vec3i &c, std::uint32_t mask)
    {
        const std::uint32_t x = static_cast<std::uint32_t>(c.x);
        const std::uint32_t y = static_cast<std::uint32_t>(c.y);
        const std::uint32_t z = static_cast<std::uint32_t>(c.z);
        return (x * kPrimeX ^ y * kPrimeY ^ z * kPrimeZ) & mask;
    }

    /** Table-entry index of vertex @p c at @p level (dense or hashed). */
    std::uint32_t vertexIndex(int level, const Vec3i &c) const;

    /**
     * Encode a point in the unit cube.
     * @param pos     Query position, clamped into [0,1]^3.
     * @param out     Receives levels*featuresPerLevel values.
     * @param visitor Optional access-trace observer.
     */
    void encode(const Vec3f &pos, std::span<float> out,
                VertexVisitor *visitor = nullptr) const;

    /**
     * Accumulate parameter gradients for a point previously encoded at
     * @p pos given dL/d(encoding) @p dout. Recomputes the interpolation
     * weights (cheap) rather than caching them.
     */
    void backward(const Vec3f &pos, std::span<const float> dout);

    /**
     * Encode a batch of points in level-major order: one pass over the
     * whole batch per level, so every pass touches a single level's
     * table (cache-friendly) instead of striding through all levels per
     * point. Each point's interpolation accumulates corners in the same
     * order as encode(), so every column is bit-exact with the scalar
     * path.
     *
     * @param pos     Query positions, clamped into [0,1]^3.
     * @param out     Feature-major [encodedDims][pos.size()] matrix:
     *                feature d of point j lands at out[d*n + j].
     * @param visitor Optional access-trace observer; visits arrive
     *                level-major but each point's 8 corners stay
     *                contiguous and in corner order.
     */
    void encodeBatch(std::span<const Vec3f> pos, std::span<float> out,
                     VertexVisitor *visitor = nullptr) const;

    /**
     * Batched backward scatter, level-major like encodeBatch.
     * @param pos  The batch previously encoded.
     * @param dout Feature-major [encodedDims][pos.size()] gradients.
     */
    void backwardBatch(std::span<const Vec3f> pos, std::span<const float> dout);

    /**
     * backwardBatch variant scattering into a per-shard sparse
     * accumulator instead of the shared gradient vector; const, so any
     * number of shards can run concurrently against one encoding. The
     * arithmetic per sample is identical to backwardBatch; only where
     * the partial sums land differs.
     */
    void backwardBatchInto(std::span<const Vec3f> pos, std::span<const float> dout,
                           HashGradAccumulator &acc) const;

    /**
     * Merge shard accumulators into grads() and reset them for reuse.
     * The merge runs level-major (all shards' level-0 contributions,
     * then level 1, ...) and shard-ascending within a level, with each
     * shard's touched entries applied in first-touch order — an order
     * that depends only on the shard partition, never on thread count
     * or scheduling, so training stays bitwise reproducible.
     */
    void mergeGradShards(std::span<HashGradAccumulator *const> shards);

    /** Flat parameter vector (levels concatenated, feature-major). */
    std::span<float> params() { return params_; }
    std::span<const float> params() const { return params_; }

    /** Flat gradient vector matching params(). */
    std::span<float> grads() { return grads_; }

    /** Zero the gradient vector. */
    void zeroGrads();

    /** Total parameter count. */
    std::size_t paramCount() const { return param_count_; }

    /** Parameter bytes at a given precision (for bandwidth accounting). */
    std::size_t paramBytes(int bytes_per_param = 2) const
    {
        return param_count_ * static_cast<std::size_t>(bytes_per_param);
    }

    /**
     * Build the packed inference table for @p mode from the fp32 master
     * table (binary16 for fp16; per-level symmetric INT8 + scale for
     * int8). Afterwards encodeBatch() dequantizes each corner feature
     * on the fly (float(q) * scale / exact binary16 widening) inside
     * the gather kernels — arithmetic identical to interpolating a
     * pre-dequantized fp32 table. The scalar encode(), the visitor
     * path, and every backward entry point keep using the fp32 master
     * table. fp32 discards the packed table.
     */
    void buildQuantized(QuantMode mode);

    /** Numeric format encodeBatch reads table entries in. */
    QuantMode quantMode() const { return quant_mode_; }

    /**
     * Release the fp32 master table and gradients. Requires a packed
     * table (quantMode() != fp32); afterwards encode(), the visitor
     * path and the backward entry points panic.
     */
    void dropFp32Weights();

    /** True until dropFp32Weights(). */
    bool hasFp32Weights() const { return has_fp32_; }

    /** Bytes of resident table storage (fp32 master + packed image). */
    std::size_t residentParamBytes() const;

    /**
     * The params()-layout table the batched encode evaluates: a copy of
     * params() in fp32 mode, otherwise the packed table dequantized
     * (what a dequantize-then-fp32 oracle would interpolate).
     */
    std::vector<float> dequantizedParams() const;

    static constexpr std::uint32_t kPrimeX = 1u;
    static constexpr std::uint32_t kPrimeY = 2654435761u;
    static constexpr std::uint32_t kPrimeZ = 805459861u;

  private:
    struct CornerSet
    {
        Vec3i coords[8];
        std::uint32_t indices[8];
        float weights[8];
    };

    /** Compute corners/weights/indices of @p pos at @p level. */
    void gatherCorners(int level, const Vec3f &pos, CornerSet &cs) const;

    HashGridConfig cfg_;
    std::vector<int> resolutions_;
    std::vector<bool> dense_;
    std::vector<std::uint32_t> entries_;
    /** Offset of each level's first float in params_. */
    std::vector<std::size_t> offsets_;
    std::vector<float> params_;
    std::vector<float> grads_;

    /** Logical parameter count (stable across dropFp32Weights). */
    std::size_t param_count_ = 0;
    QuantMode quant_mode_ = QuantMode::fp32;
    bool has_fp32_ = true;
    /** Packed tables, same element layout/offsets as params_. The int8
     *  table carries 4 trailing pad bytes: the AVX2 variant fetches
     *  entries with 32-bit gathers at byte stride 2. */
    std::vector<std::uint16_t> qtab_fp16_;
    std::vector<std::int8_t> qtab_int8_;
    /** Per-level symmetric int8 scales. */
    std::vector<QuantScale> qlevel_scales_;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_HASH_ENCODING_H_
