#include "nerf/batch_evaluator.h"

#include <atomic>

#include "obs/metrics.h"

namespace fusion3d::nerf
{

namespace
{

/** Process-wide occupancy-compaction counters behind nerf.batch.compaction.*. */
struct CompactionMetrics
{
    std::atomic<std::uint64_t> batch_samples{0};
    std::atomic<std::uint64_t> mlp_samples{0};

    CompactionMetrics()
    {
        obs::MetricsRegistry::global().registerCollector(
            "nerf.batch.compaction", [this](obs::MetricSink &sink) {
                const double b = static_cast<double>(
                    batch_samples.load(std::memory_order_relaxed));
                const double m = static_cast<double>(
                    mlp_samples.load(std::memory_order_relaxed));
                sink.counter("nerf.batch.compaction.batch_samples", b);
                sink.counter("nerf.batch.compaction.mlp_samples", m);
                sink.gauge("nerf.batch.compaction.keep_ratio",
                           b > 0.0 ? m / b : 1.0);
            });
    }
};

CompactionMetrics &
compactionMetrics()
{
    static CompactionMetrics metrics;
    return metrics;
}

} // namespace

void
noteCompactionMetrics(std::size_t batch_samples, std::size_t mlp_samples)
{
    CompactionMetrics &m = compactionMetrics();
    m.batch_samples.fetch_add(batch_samples, std::memory_order_relaxed);
    m.mlp_samples.fetch_add(mlp_samples, std::memory_order_relaxed);
}

} // namespace fusion3d::nerf
