/**
 * @file
 * The point-wise Instant-NGP radiance model: hash-grid encoding feeding
 * a density MLP whose geometry features, concatenated with a spherical-
 * harmonics view encoding, feed a color MLP. This is the per-sample
 * computation Stages II and III of the Fusion-3D pipeline execute.
 */

#ifndef FUSION3D_NERF_NERF_MODEL_H_
#define FUSION3D_NERF_NERF_MODEL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/vec.h"
#include "nerf/hash_encoding.h"
#include "nerf/mlp.h"
#include "nerf/sh_encoding.h"

namespace fusion3d
{
class ThreadPool;
}

namespace fusion3d::nerf
{

/** Architecture configuration of one radiance model. */
struct NerfModelConfig
{
    HashGridConfig grid;
    /** Geometry feature channels passed from density to color net. */
    int geoFeatures = 15;
    /** Hidden width of the density MLP (one hidden layer). */
    int densityHidden = 32;
    /** Hidden width of the color MLP (one hidden layer). */
    int colorHidden = 32;
    /** Spherical-harmonics degree for the view direction (1..4). */
    int shDegree = 3;

    int shDims() const { return shCoefficientCount(shDegree); }
};

/** Density + color of one evaluated point. */
struct PointEval
{
    float sigma = 0.0f;
    Vec3f rgb;
};

/** Scratch buffers for point evaluation; reuse across calls. */
struct PointWorkspace
{
    std::vector<float> encoding;
    std::vector<float> sh;
    std::vector<float> colorIn;
    std::vector<float> dDensityOut;
    std::vector<float> dColorOut;
    MlpWorkspace densityWs;
    MlpWorkspace colorWs;
    /** Raw (pre-activation) density output cached by forwardPoint. */
    float rawSigma = 0.0f;
    /** Raw color-net outputs cached by forwardPoint. */
    float rawRgb[3] = {0.0f, 0.0f, 0.0f};
};

/**
 * Scratch buffers for batched evaluation; reuse across calls. All
 * matrices are feature-major ([dim][N], sample index fastest) to match
 * MlpBatchWorkspace; buffers grow on demand and never shrink.
 */
struct NerfBatchWorkspace
{
    /** Encoded positions, [encodedDims][N]. */
    std::vector<float> encoding;
    /** Per-point SH scratch (shDims values, reused point by point). */
    std::vector<float> sh;
    /** Color-net input, [geoFeatures + shDims][N]. */
    std::vector<float> colorIn;
    /** Raw (pre-activation) density outputs, [N]. */
    std::vector<float> rawSigma;
    /** dL/d(density-net output), [1 + geoFeatures][N]. */
    std::vector<float> dDensityOut;
    /** dL/d(color-net output), [3][N]. */
    std::vector<float> dColorOut;
    /** Recomputed activations used by backwardBatch. */
    std::vector<float> fwdSigmas;
    std::vector<Vec3f> fwdRgbs;
    MlpBatchWorkspace densityWs;
    MlpBatchWorkspace colorWs;
    /** Allocated batch capacity (samples). */
    std::size_t capacity = 0;
};

/**
 * Everything one training shard owns: a full batch workspace plus
 * private gradient buffers for both MLPs and the hash grid. Shards
 * share no mutable state, so any number can run concurrently; the
 * trainer merges the buffers afterwards in a fixed order.
 */
struct NerfShardArena
{
    NerfBatchWorkspace ws;
    /** Private density-net gradient buffer, layout of Mlp::grads(). */
    std::vector<float> densityGrads;
    /** Private color-net gradient buffer, layout of Mlp::grads(). */
    std::vector<float> colorGrads;
    /** Private sparse hash-grid gradient accumulator. */
    HashGradAccumulator encodingGrads;
};

/**
 * Reusable arena set for sharded batch evaluation. Grows to the shard
 * count of the largest batch seen and then allocates nothing: buffers
 * are reused across iterations, so the steady-state parallel training
 * loop is allocation-free.
 */
struct NerfParallelWorkspace
{
    std::vector<NerfShardArena> shards;
    /** Scratch pointer list handed to HashGridEncoding::mergeGradShards. */
    std::vector<HashGradAccumulator *> accPtrs;
};

/** A trainable radiance field over the normalized unit cube. */
class NerfModel
{
  public:
    explicit NerfModel(const NerfModelConfig &cfg, std::uint64_t seed = 7);

    const NerfModelConfig &config() const { return cfg_; }
    HashGridEncoding &encoding() { return *encoding_; }
    const HashGridEncoding &encoding() const { return *encoding_; }
    Mlp &densityNet() { return *density_net_; }
    const Mlp &densityNet() const { return *density_net_; }
    Mlp &colorNet() { return *color_net_; }
    const Mlp &colorNet() const { return *color_net_; }

    PointWorkspace makeWorkspace() const;

    /** Allocate a batch workspace with room for @p capacity samples. */
    NerfBatchWorkspace makeBatchWorkspace(std::size_t capacity = 0) const;

    /**
     * Evaluate density and view-dependent color of one point.
     * @param pos     Position in [0,1]^3.
     * @param dir     Unit view direction.
     * @param ws      Workspace (activation cache for a following backward).
     * @param visitor Optional Stage-II vertex-access observer.
     */
    PointEval forwardPoint(const Vec3f &pos, const Vec3f &dir, PointWorkspace &ws,
                           VertexVisitor *visitor = nullptr) const;

    /** Density-only evaluation (occupancy-grid updates). */
    float queryDensity(const Vec3f &pos, PointWorkspace &ws) const;

    /**
     * Accumulate parameter gradients for a point. Recomputes the forward
     * pass internally (recompute-in-backward strategy), so it does NOT
     * require a prior forwardPoint on the same workspace.
     *
     * @param dsigma dL/d(sigma).
     * @param drgb   dL/d(rgb).
     */
    void backwardPoint(const Vec3f &pos, const Vec3f &dir, float dsigma,
                       const Vec3f &drgb, PointWorkspace &ws);

    /**
     * Evaluate density and color for a whole batch through the batched
     * encoding (level-major gather) and batched MLPs (blocked GEMM).
     * Per sample the arithmetic matches forwardPoint() bit-exactly;
     * forwardPoint stays as the reference oracle the equivalence tests
     * compare against. Emits an "nerf/forward_batch" trace span and
     * feeds the nerf.batch.* metrics.
     *
     * @param pos     Sample positions in [0,1]^3 (batch size = pos.size()).
     * @param dirs    Unit view direction per sample (same length).
     * @param ws      Batch workspace; grown as needed, cached for backward.
     * @param sigmas  Receives pos.size() activated densities.
     * @param rgbs    Receives pos.size() activated colors.
     * @param visitor Optional Stage-II vertex-access observer.
     */
    void forwardBatch(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                      NerfBatchWorkspace &ws, std::span<float> sigmas,
                      std::span<Vec3f> rgbs, VertexVisitor *visitor = nullptr) const;

    /**
     * Accumulate parameter gradients for a whole batch. Recomputes the
     * batched forward internally (recompute-in-backward, like
     * backwardPoint), so it does NOT require a prior forwardBatch on
     * the same workspace.
     *
     * @param dsigmas dL/d(sigma) per sample.
     * @param drgbs   dL/d(rgb) per sample.
     */
    void backwardBatch(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                       std::span<const float> dsigmas, std::span<const Vec3f> drgbs,
                       NerfBatchWorkspace &ws);

    /** Shard size the parallel paths aim for (samples per shard). */
    static constexpr std::size_t kShardGrain = 256;
    /** Upper bound on shards per batch (bounds arena memory). */
    static constexpr std::size_t kMaxShards = 16;

    /**
     * Number of shards a batch of @p n samples splits into. Depends
     * only on n — never on thread count or pool size — so the shard
     * partition (and therefore the gradient reduction order) is fixed
     * for a given training trajectory.
     */
    static std::size_t shardCount(std::size_t n);

    /**
     * forwardBatch split into shardCount(n) fixed shards executed via
     * @p pool (inline when @p pool is null). forwardBatch is batch-size
     * invariant per sample, so the result is bit-exact with the serial
     * call at any thread count.
     */
    void forwardBatchParallel(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                              NerfParallelWorkspace &ws, std::span<float> sigmas,
                              std::span<Vec3f> rgbs, ThreadPool *pool) const;

    /**
     * backwardBatch split into fixed shards: each shard recomputes its
     * forward and accumulates gradients into its private arena buffers
     * (backwardBatchInto), then a deterministic reduction merges them —
     * a serial pairwise tree over the MLP shard buffers and a
     * level-major sparse merge for the hash grid. For a given shard
     * partition the summation order is fixed, so training with a pool
     * reproduces bit-identical weights at any thread count.
     */
    void backwardBatchParallel(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                               std::span<const float> dsigmas,
                               std::span<const Vec3f> drgbs, NerfParallelWorkspace &ws,
                               ThreadPool *pool);

    /**
     * Density-only batched evaluation (occupancy-grid updates): batched
     * encode + density GEMM + activation. Bit-exact per sample with
     * queryDensity().
     */
    void queryDensityBatch(std::span<const Vec3f> pos, NerfBatchWorkspace &ws,
                           std::span<float> sigmas) const;

    /** queryDensityBatch over fixed shards executed via @p pool. */
    void queryDensityBatchParallel(std::span<const Vec3f> pos, NerfParallelWorkspace &ws,
                                   std::span<float> sigmas, ThreadPool *pool) const;

    /** Zero all parameter gradients (encoding and both MLPs). */
    void zeroGrads();

    /** Total trainable parameter count. */
    std::size_t paramCount() const;

    /**
     * Switch the batched inference path of all three parameter blocks
     * (hash table + both MLPs) to @p mode, building the packed weight
     * images from the fp32 masters. With @p dropFp32 (and a non-fp32
     * mode) the fp32 masters are released afterwards — the resident-
     * memory win of a quantized serve replica — at the cost of the
     * scalar/backward paths panicking from then on.
     */
    void setInferenceQuant(QuantMode mode, bool dropFp32 = true);

    /** Numeric format the batched inference path reads weights in. */
    QuantMode inferenceQuantMode() const { return encoding_->quantMode(); }

    /** Bytes of resident parameter storage across all blocks. */
    std::size_t residentParamBytes() const;

    /** MLP multiply-accumulates per point evaluation (forward). */
    std::uint64_t macsPerPoint() const;

    /** Density activation: sigma = exp(clamped raw). */
    static float densityActivation(float raw);
    /** Derivative of densityActivation w.r.t. raw, given the output. */
    static float densityActivationGrad(float raw, float sigma);

  private:
    /** Backward of one shard into its private arena buffers. */
    void backwardShard(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                       std::span<const float> dsigmas, std::span<const Vec3f> drgbs,
                       NerfShardArena &arena) const;

    NerfModelConfig cfg_;
    std::unique_ptr<HashGridEncoding> encoding_;
    std::unique_ptr<Mlp> density_net_;
    std::unique_ptr<Mlp> color_net_;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_NERF_MODEL_H_
