#include "nerf/hash_encoding.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace fusion3d::nerf
{

namespace
{

/** Corner indices and trilinear weights of one point at one level. */
struct LevelCorners
{
    std::uint32_t indices[8];
    float weights[8];
};

/**
 * Corner gather with the level constants (resolution, dense flag,
 * vertex-row stride, hash mask) hoisted by the caller. The arithmetic
 * — and therefore every float result — is identical to
 * HashGridEncoding::gatherCorners; this variant just drops the
 * per-corner dense/hashed branch through vertexIndex and the coords
 * bookkeeping the visitor path needs.
 */
inline void
cornerIndicesWeights(const Vec3f &pos, float fres, bool dense, std::uint32_t n1,
                     std::uint32_t mask, LevelCorners &lc)
{
    const Vec3f p = clamp(pos, 0.0f, 1.0f);
    const Vec3f scaled{std::min(p.x * fres, fres - 1e-4f),
                       std::min(p.y * fres, fres - 1e-4f),
                       std::min(p.z * fres, fres - 1e-4f)};
    const Vec3i base = floorToInt(scaled);
    const Vec3f frac = scaled - toFloat(base);

    for (int c = 0; c < 8; ++c) {
        const int dx = c & 1;
        const int dy = (c >> 1) & 1;
        const int dz = (c >> 2) & 1;
        const Vec3i v{base.x + dx, base.y + dy, base.z + dz};
        lc.indices[c] =
            dense ? (static_cast<std::uint32_t>(v.z) * n1 +
                     static_cast<std::uint32_t>(v.y)) *
                            n1 +
                        static_cast<std::uint32_t>(v.x)
                  : HashGridEncoding::hashCoords(v, mask);
        const float wx = dx ? frac.x : 1.0f - frac.x;
        const float wy = dy ? frac.y : 1.0f - frac.y;
        const float wz = dz ? frac.z : 1.0f - frac.z;
        lc.weights[c] = wx * wy * wz;
    }
}

} // namespace

HashGridEncoding::HashGridEncoding(const HashGridConfig &cfg, std::uint64_t seed)
    : cfg_(cfg)
{
    if (cfg.levels < 1)
        fatal("HashGridEncoding needs at least one level");
    if (cfg.featuresPerLevel < 1 || cfg.featuresPerLevel > 8)
        fatal("HashGridEncoding supports 1..8 features per level (got %d)",
              cfg.featuresPerLevel);
    if (cfg.baseResolution < 1 || cfg.maxResolution < cfg.baseResolution)
        fatal("HashGridEncoding resolution range invalid (%d..%d)",
              cfg.baseResolution, cfg.maxResolution);

    // Per-level geometric growth factor, as in Instant-NGP eq. (3).
    const double growth =
        cfg.levels > 1
            ? std::exp((std::log(static_cast<double>(cfg.maxResolution)) -
                        std::log(static_cast<double>(cfg.baseResolution))) /
                       static_cast<double>(cfg.levels - 1))
            : 1.0;

    resolutions_.resize(cfg.levels);
    dense_.resize(cfg.levels);
    entries_.resize(cfg.levels);
    offsets_.resize(cfg.levels);

    std::size_t total_floats = 0;
    for (int l = 0; l < cfg.levels; ++l) {
        const double r = static_cast<double>(cfg.baseResolution) * std::pow(growth, l);
        resolutions_[l] = static_cast<int>(std::floor(r));
        const std::uint64_t dense_entries =
            static_cast<std::uint64_t>(resolutions_[l] + 1) * (resolutions_[l] + 1) *
            (resolutions_[l] + 1);
        if (dense_entries <= cfg.tableSize()) {
            dense_[l] = true;
            entries_[l] = static_cast<std::uint32_t>(dense_entries);
        } else {
            dense_[l] = false;
            entries_[l] = cfg.tableSize();
        }
        offsets_[l] = total_floats;
        total_floats += static_cast<std::size_t>(entries_[l]) * cfg.featuresPerLevel;
    }

    params_.resize(total_floats);
    grads_.assign(total_floats, 0.0f);

    // Small uniform init, as in Instant-NGP (U[-1e-4, 1e-4]).
    Pcg32 rng(seed, 0x9e3779b97f4a7c15ULL);
    for (float &p : params_)
        p = rng.nextRange(-1e-4f, 1e-4f);
}

std::uint32_t
HashGridEncoding::vertexIndex(int level, const Vec3i &c) const
{
    if (dense_[level]) {
        const std::uint32_t n = static_cast<std::uint32_t>(resolutions_[level] + 1);
        return (static_cast<std::uint32_t>(c.z) * n + static_cast<std::uint32_t>(c.y)) * n +
               static_cast<std::uint32_t>(c.x);
    }
    return hashCoords(c, cfg_.tableSize() - 1);
}

void
HashGridEncoding::gatherCorners(int level, const Vec3f &pos, CornerSet &cs) const
{
    const float n = static_cast<float>(resolutions_[level]);
    // Clamp so base+1 stays a valid vertex even at pos == 1.0.
    const Vec3f p = clamp(pos, 0.0f, 1.0f);
    const Vec3f scaled{std::min(p.x * n, n - 1e-4f),
                       std::min(p.y * n, n - 1e-4f),
                       std::min(p.z * n, n - 1e-4f)};
    const Vec3i base = floorToInt(scaled);
    const Vec3f frac = scaled - toFloat(base);

    for (int c = 0; c < 8; ++c) {
        const int dx = c & 1;
        const int dy = (c >> 1) & 1;
        const int dz = (c >> 2) & 1;
        const Vec3i v{base.x + dx, base.y + dy, base.z + dz};
        cs.coords[c] = v;
        cs.indices[c] = vertexIndex(level, v);
        const float wx = dx ? frac.x : 1.0f - frac.x;
        const float wy = dy ? frac.y : 1.0f - frac.y;
        const float wz = dz ? frac.z : 1.0f - frac.z;
        cs.weights[c] = wx * wy * wz;
    }
}

void
HashGridEncoding::encode(const Vec3f &pos, std::span<float> out,
                         VertexVisitor *visitor) const
{
    const int fpl = cfg_.featuresPerLevel;
    if (out.size() < static_cast<std::size_t>(cfg_.encodedDims()))
        panic("HashGridEncoding::encode output span too small");

    CornerSet cs;
    for (int l = 0; l < cfg_.levels; ++l) {
        gatherCorners(l, pos, cs);
        float acc[8]; // featuresPerLevel <= 8 supported
        for (int f = 0; f < fpl; ++f)
            acc[f] = 0.0f;
        const std::size_t base = offsets_[l];
        for (int c = 0; c < 8; ++c) {
            const std::size_t at = base + static_cast<std::size_t>(cs.indices[c]) * fpl;
            const float w = cs.weights[c];
            for (int f = 0; f < fpl; ++f)
                acc[f] += w * params_[at + f];
            if (visitor)
                visitor->visit(l, c, cs.coords[c], cs.indices[c], dense_[l]);
        }
        for (int f = 0; f < fpl; ++f)
            out[static_cast<std::size_t>(l) * fpl + f] = acc[f];
    }
}

void
HashGridEncoding::backward(const Vec3f &pos, std::span<const float> dout)
{
    const int fpl = cfg_.featuresPerLevel;
    if (dout.size() < static_cast<std::size_t>(cfg_.encodedDims()))
        panic("HashGridEncoding::backward gradient span too small");

    CornerSet cs;
    for (int l = 0; l < cfg_.levels; ++l) {
        gatherCorners(l, pos, cs);
        const std::size_t base = offsets_[l];
        for (int c = 0; c < 8; ++c) {
            const std::size_t at = base + static_cast<std::size_t>(cs.indices[c]) * fpl;
            const float w = cs.weights[c];
            for (int f = 0; f < fpl; ++f)
                grads_[at + f] += w * dout[static_cast<std::size_t>(l) * fpl + f];
        }
    }
}

void
HashGridEncoding::encodeBatch(std::span<const Vec3f> pos, std::span<float> out,
                              VertexVisitor *visitor) const
{
    const int fpl = cfg_.featuresPerLevel;
    const std::size_t n = pos.size();
    if (out.size() < static_cast<std::size_t>(cfg_.encodedDims()) * n)
        panic("HashGridEncoding::encodeBatch output span too small (%zu < %zu)",
              out.size(), static_cast<std::size_t>(cfg_.encodedDims()) * n);

    CornerSet cs;
    LevelCorners lc;
    for (int l = 0; l < cfg_.levels; ++l) {
        const std::size_t base = offsets_[l];
        const std::size_t row = static_cast<std::size_t>(l) * fpl * n;
        if (visitor) {
            // Observed path: full gatherCorners so the visitor sees
            // coords, in the same contiguous 8-corner groups.
            for (std::size_t j = 0; j < n; ++j) {
                gatherCorners(l, pos[j], cs);
                float acc[8]; // featuresPerLevel <= 8 supported
                for (int f = 0; f < fpl; ++f)
                    acc[f] = 0.0f;
                for (int c = 0; c < 8; ++c) {
                    const std::size_t at =
                        base + static_cast<std::size_t>(cs.indices[c]) * fpl;
                    const float w = cs.weights[c];
                    for (int f = 0; f < fpl; ++f)
                        acc[f] += w * params_[at + f];
                    visitor->visit(l, c, cs.coords[c], cs.indices[c], dense_[l]);
                }
                for (int f = 0; f < fpl; ++f)
                    out[row + static_cast<std::size_t>(f) * n + j] = acc[f];
            }
            continue;
        }

        // Hot path: level constants hoisted out of the point loop,
        // gather specialized for the common two-feature tables. Per
        // point the accumulation order matches encode() exactly.
        const float fres = static_cast<float>(resolutions_[l]);
        const bool dense = dense_[l];
        const std::uint32_t n1 = static_cast<std::uint32_t>(resolutions_[l] + 1);
        const std::uint32_t mask = cfg_.tableSize() - 1;
        const float *lp = params_.data() + base;
        if (fpl == 2) {
            for (std::size_t j = 0; j < n; ++j) {
                cornerIndicesWeights(pos[j], fres, dense, n1, mask, lc);
                float a0 = 0.0f, a1 = 0.0f;
                for (int c = 0; c < 8; ++c) {
                    const float *q = lp + static_cast<std::size_t>(lc.indices[c]) * 2;
                    const float w = lc.weights[c];
                    a0 += w * q[0];
                    a1 += w * q[1];
                }
                out[row + j] = a0;
                out[row + n + j] = a1;
            }
        } else {
            for (std::size_t j = 0; j < n; ++j) {
                cornerIndicesWeights(pos[j], fres, dense, n1, mask, lc);
                float acc[8];
                for (int f = 0; f < fpl; ++f)
                    acc[f] = 0.0f;
                for (int c = 0; c < 8; ++c) {
                    const float *q =
                        lp + static_cast<std::size_t>(lc.indices[c]) * fpl;
                    const float w = lc.weights[c];
                    for (int f = 0; f < fpl; ++f)
                        acc[f] += w * q[f];
                }
                for (int f = 0; f < fpl; ++f)
                    out[row + static_cast<std::size_t>(f) * n + j] = acc[f];
            }
        }
    }
}

void
HashGridEncoding::backwardBatch(std::span<const Vec3f> pos, std::span<const float> dout)
{
    const int fpl = cfg_.featuresPerLevel;
    const std::size_t n = pos.size();
    if (dout.size() < static_cast<std::size_t>(cfg_.encodedDims()) * n)
        panic("HashGridEncoding::backwardBatch gradient span too small");

    LevelCorners lc;
    for (int l = 0; l < cfg_.levels; ++l) {
        const std::size_t base = offsets_[l];
        const std::size_t row = static_cast<std::size_t>(l) * fpl * n;
        const float fres = static_cast<float>(resolutions_[l]);
        const bool dense = dense_[l];
        const std::uint32_t n1 = static_cast<std::uint32_t>(resolutions_[l] + 1);
        const std::uint32_t mask = cfg_.tableSize() - 1;
        float *lg = grads_.data() + base;
        for (std::size_t j = 0; j < n; ++j) {
            cornerIndicesWeights(pos[j], fres, dense, n1, mask, lc);
            for (int c = 0; c < 8; ++c) {
                float *g = lg + static_cast<std::size_t>(lc.indices[c]) * fpl;
                const float w = lc.weights[c];
                for (int f = 0; f < fpl; ++f)
                    g[f] += w * dout[row + static_cast<std::size_t>(f) * n + j];
            }
        }
    }
}

void
HashGridEncoding::backwardBatchInto(std::span<const Vec3f> pos,
                                    std::span<const float> dout,
                                    HashGradAccumulator &acc) const
{
    const int fpl = cfg_.featuresPerLevel;
    const std::size_t n = pos.size();
    if (dout.size() < static_cast<std::size_t>(cfg_.encodedDims()) * n)
        panic("HashGridEncoding::backwardBatchInto gradient span too small");

    // Lazy one-time sizing; a reused accumulator never reallocates.
    if (acc.acc_.size() != params_.size()) {
        acc.acc_.assign(params_.size(), 0.0f);
        acc.seen_.assign(params_.size() / static_cast<std::size_t>(fpl), 0);
        acc.touched_.assign(static_cast<std::size_t>(cfg_.levels), {});
        acc.total_touched_ = 0;
    }

    LevelCorners lc;
    for (int l = 0; l < cfg_.levels; ++l) {
        const std::size_t base = offsets_[l];
        const std::size_t entry_base = base / static_cast<std::size_t>(fpl);
        const std::size_t row = static_cast<std::size_t>(l) * fpl * n;
        const float fres = static_cast<float>(resolutions_[l]);
        const bool dense = dense_[l];
        const std::uint32_t n1 = static_cast<std::uint32_t>(resolutions_[l] + 1);
        const std::uint32_t mask = cfg_.tableSize() - 1;
        float *lg = acc.acc_.data() + base;
        std::uint8_t *seen = acc.seen_.data() + entry_base;
        std::vector<std::uint32_t> &touched =
            acc.touched_[static_cast<std::size_t>(l)];
        for (std::size_t j = 0; j < n; ++j) {
            cornerIndicesWeights(pos[j], fres, dense, n1, mask, lc);
            for (int c = 0; c < 8; ++c) {
                const std::uint32_t idx = lc.indices[c];
                if (!seen[idx]) {
                    seen[idx] = 1;
                    touched.push_back(idx);
                    ++acc.total_touched_;
                }
                float *g = lg + static_cast<std::size_t>(idx) * fpl;
                const float w = lc.weights[c];
                for (int f = 0; f < fpl; ++f)
                    g[f] += w * dout[row + static_cast<std::size_t>(f) * n + j];
            }
        }
    }
}

void
HashGridEncoding::mergeGradShards(std::span<HashGradAccumulator *const> shards)
{
    const int fpl = cfg_.featuresPerLevel;
    for (int l = 0; l < cfg_.levels; ++l) {
        const std::size_t base = offsets_[l];
        const std::size_t entry_base = base / static_cast<std::size_t>(fpl);
        for (HashGradAccumulator *acc : shards) {
            if (!acc || acc->empty() ||
                acc->touched_.size() <= static_cast<std::size_t>(l))
                continue;
            for (const std::uint32_t idx :
                 acc->touched_[static_cast<std::size_t>(l)]) {
                const std::size_t at = base + static_cast<std::size_t>(idx) * fpl;
                for (int f = 0; f < fpl; ++f) {
                    grads_[at + f] += acc->acc_[at + f];
                    acc->acc_[at + f] = 0.0f;
                }
                acc->seen_[entry_base + idx] = 0;
            }
        }
    }
    for (HashGradAccumulator *acc : shards) {
        if (!acc)
            continue;
        for (std::vector<std::uint32_t> &t : acc->touched_)
            t.clear();
        acc->total_touched_ = 0;
    }
}

void
HashGridEncoding::zeroGrads()
{
    std::fill(grads_.begin(), grads_.end(), 0.0f);
}

} // namespace fusion3d::nerf
