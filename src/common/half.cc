#include "common/half.h"

#include <bit>
#include <cstring>

namespace fusion3d
{

Half
Half::fromFloat(float f)
{
    const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
    const std::uint32_t sign = (x >> 16) & 0x8000u;
    const std::uint32_t exp32 = (x >> 23) & 0xffu;
    const std::uint32_t man32 = x & 0x7fffffu;

    std::uint16_t out;
    if (exp32 == 0xff) {
        // Inf / NaN: preserve NaN-ness with a quiet payload bit.
        out = static_cast<std::uint16_t>(sign | 0x7c00u | (man32 ? 0x200u : 0u));
        return fromBits(out);
    }

    // Re-bias: float exponent bias 127, half bias 15.
    const int exp16 = static_cast<int>(exp32) - 127 + 15;

    if (exp16 >= 0x1f) {
        // Overflow to infinity.
        out = static_cast<std::uint16_t>(sign | 0x7c00u);
        return fromBits(out);
    }

    if (exp16 <= 0) {
        // Subnormal half or zero. Shift the full 24-bit significand
        // right and round to nearest even.
        if (exp16 < -10) {
            out = static_cast<std::uint16_t>(sign); // rounds to zero
            return fromBits(out);
        }
        const std::uint32_t sig = man32 | 0x800000u; // implicit bit
        const int shift = 14 - exp16;                // 14..24
        const std::uint32_t half_bit = 1u << (shift - 1);
        const std::uint32_t mant = sig >> shift;
        const std::uint32_t rem = sig & ((1u << shift) - 1);
        std::uint32_t rounded = mant;
        if (rem > half_bit || (rem == half_bit && (mant & 1)))
            ++rounded;
        out = static_cast<std::uint16_t>(sign | rounded);
        return fromBits(out);
    }

    // Normal number: keep the top 10 mantissa bits, round to nearest even.
    std::uint32_t mant = man32 >> 13;
    const std::uint32_t rem = man32 & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (mant & 1)))
        ++mant;
    std::uint32_t exp_out = static_cast<std::uint32_t>(exp16);
    if (mant == 0x400u) { // mantissa carry out
        mant = 0;
        ++exp_out;
        if (exp_out >= 0x1f) {
            out = static_cast<std::uint16_t>(sign | 0x7c00u);
            return fromBits(out);
        }
    }
    out = static_cast<std::uint16_t>(sign | (exp_out << 10) | mant);
    return fromBits(out);
}

Half
Half::fromDouble(double d)
{
    const std::uint64_t x = std::bit_cast<std::uint64_t>(d);
    const std::uint32_t sign = static_cast<std::uint32_t>((x >> 48) & 0x8000u);
    const std::uint32_t exp64 = static_cast<std::uint32_t>((x >> 52) & 0x7ffu);
    const std::uint64_t man64 = x & 0xfffffffffffffULL;

    if (exp64 == 0x7ff) {
        return fromBits(static_cast<std::uint16_t>(sign | 0x7c00u |
                                                   (man64 ? 0x200u : 0u)));
    }

    // Re-bias: double bias 1023, half bias 15.
    const int exp16 = static_cast<int>(exp64) - 1023 + 15;

    if (exp16 >= 0x1f)
        return fromBits(static_cast<std::uint16_t>(sign | 0x7c00u));

    if (exp16 <= 0) {
        // Subnormal half or zero: shift the 53-bit significand down.
        if (exp16 < -10)
            return fromBits(static_cast<std::uint16_t>(sign));
        const std::uint64_t sig = man64 | (exp64 ? (1ULL << 52) : 0);
        const int shift = 43 - exp16; // 43..53
        const std::uint64_t half_bit = 1ULL << (shift - 1);
        const std::uint64_t mant = sig >> shift;
        const std::uint64_t rem = sig & ((1ULL << shift) - 1);
        std::uint64_t rounded = mant;
        if (rem > half_bit || (rem == half_bit && (mant & 1)))
            ++rounded;
        return fromBits(static_cast<std::uint16_t>(sign | rounded));
    }

    // Normal: keep the top 10 mantissa bits with round-to-nearest-even.
    std::uint64_t mant = man64 >> 42;
    const std::uint64_t rem = man64 & ((1ULL << 42) - 1);
    const std::uint64_t half_bit = 1ULL << 41;
    if (rem > half_bit || (rem == half_bit && (mant & 1)))
        ++mant;
    std::uint32_t exp_out = static_cast<std::uint32_t>(exp16);
    if (mant == 0x400u) {
        mant = 0;
        ++exp_out;
        if (exp_out >= 0x1f)
            return fromBits(static_cast<std::uint16_t>(sign | 0x7c00u));
    }
    return fromBits(static_cast<std::uint16_t>(sign | (exp_out << 10) |
                                               static_cast<std::uint32_t>(mant)));
}

float
Half::toFloat() const
{
    const std::uint32_t sign = static_cast<std::uint32_t>(signBit()) << 31;
    const std::uint32_t exp = exponentField();
    const std::uint32_t man = mantissaField();

    std::uint32_t out;
    if (exp == 0) {
        if (man == 0) {
            out = sign; // signed zero
        } else {
            // Subnormal: normalize into the float format.
            int e = -1;
            std::uint32_t m = man;
            while (!(m & 0x400u)) {
                m <<= 1;
                ++e;
            }
            const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
            out = sign | (exp32 << 23) | ((m & 0x3ffu) << 13);
        }
    } else if (exp == 0x1f) {
        out = sign | 0x7f800000u | (man << 13);
    } else {
        out = sign | ((exp - 15 + 127) << 23) | (man << 13);
    }
    return std::bit_cast<float>(out);
}

} // namespace fusion3d
