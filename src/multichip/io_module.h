/**
 * @file
 * The I/O module of the multi-chip system (Fig. 4(b)): broadcasts input
 * rays to the expert chips, runs the MoE gating, and fuses the expert
 * outputs by addition. On the PCB prototype this is an FPGA; in the
 * simulated system it is synthesized in the same 28 nm flow and adds
 * 0.5% area and 2.3% SRAM overhead (Sec. VI-B).
 *
 * Also contains the chiplet-variant buffer model of Fig. 14(b): the
 * in-package buffer that lets compute chips be temporally reused for
 * larger models while holding off-package bandwidth at 0.6 GB/s.
 */

#ifndef FUSION3D_MULTICHIP_IO_MODULE_H_
#define FUSION3D_MULTICHIP_IO_MODULE_H_

#include <cstdint>

#include "chip/config.h"

namespace fusion3d::multichip
{

/** Area/SRAM overhead model of the PCB system's I/O module. */
struct IoModule
{
    /** Fractional die-area overhead over the summed compute chips. */
    double areaOverheadFraction = 0.005;
    /** Fractional SRAM overhead over the summed compute chips. */
    double sramOverheadFraction = 0.023;
    /** Fractional power overhead at nominal operation. */
    double powerOverheadFraction = 0.01;

    /** I/O-module area for a system of @p chips compute chips. */
    double
    areaMm2(const chip::ChipConfig &c, int chips) const
    {
        return c.dieAreaMm2 * chips * areaOverheadFraction;
    }

    /** I/O-module SRAM in KB for a system of @p chips compute chips. */
    double
    sramKb(const chip::ChipConfig &c, int chips) const
    {
        return static_cast<double>(c.totalSramKb()) * chips * sramOverheadFraction;
    }

    double
    powerW(const chip::ChipConfig &c, int chips) const
    {
        return c.typicalPowerW * chips * powerOverheadFraction;
    }
};

/** Chiplet-package I/O module with a model buffer (Fig. 14). */
struct ChipletIoModel
{
    /** Base logic area of the I/O module without any buffer, mm^2. */
    double baseLogicMm2 = 0.35;
    /** 28 nm SRAM macro density including periphery, mm^2 per MB. */
    double sramMm2PerMb = 1.05;
    /** Hash-table bytes resident across the compute chips. */
    double onchipTableBytes = 4.0 * 640.0 * 1024.0;

    /**
     * I/O-module area needed so a model of @p model_bytes hash-table
     * bytes can be served at 0.6 GB/s off-package: everything that does
     * not fit on the compute chips must be buffered in the package.
     */
    double
    areaMm2(double model_bytes) const
    {
        const double spill = model_bytes > onchipTableBytes
                                 ? model_bytes - onchipTableBytes
                                 : 0.0;
        return baseLogicMm2 + spill / (1024.0 * 1024.0) * sramMm2PerMb;
    }
};

} // namespace fusion3d::multichip

#endif // FUSION3D_MULTICHIP_IO_MODULE_H_
