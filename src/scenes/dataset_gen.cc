#include "scenes/dataset_gen.h"

#include <algorithm>
#include <utility>

namespace fusion3d::scenes
{

DatasetConfig
syntheticRig(int image_size)
{
    DatasetConfig cfg;
    cfg.width = cfg.height = image_size;
    cfg.orbitRadius = 1.4f;
    cfg.vfovDegrees = 45.0f;
    return cfg;
}

DatasetConfig
nerf360Rig(int image_size)
{
    DatasetConfig cfg;
    cfg.width = cfg.height = image_size;
    // Inside the cube looking across the scene.
    cfg.orbitRadius = 0.38f;
    cfg.vfovDegrees = 70.0f;
    cfg.elevLowDeg = 8.0f;
    cfg.elevHighDeg = 25.0f;
    cfg.trainViews = 16;
    return cfg;
}

nerf::Dataset
makeDataset(const Scene &scene, const DatasetConfig &cfg)
{
    nerf::Dataset ds;
    ds.sceneName = scene.name();

    const Vec3f center{0.5f, 0.45f, 0.5f};
    const int total = cfg.trainViews + cfg.testViews;
    for (int i = 0; i < total; ++i) {
        // Spread azimuths evenly; interleave test views between train
        // views so the held-out poses are genuinely novel.
        const float azim = 360.0f * static_cast<float>(i) / static_cast<float>(total);
        const float elev = (i % 2 == 0) ? cfg.elevLowDeg : cfg.elevHighDeg;
        const nerf::Camera cam = nerf::Camera::orbit(center, cfg.orbitRadius, azim, elev,
                                                     cfg.vfovDegrees, cfg.width,
                                                     cfg.height);
        nerf::TrainView view;
        view.camera = cam;
        view.image = referenceRender(scene, cam, cfg.reference);
        // Every (trainViews/testViews)-ish slot becomes a test view.
        if (cfg.testViews > 0 && (i % (total / std::max(cfg.testViews, 1))) ==
                                     (total / std::max(cfg.testViews, 1)) / 2 &&
            static_cast<int>(ds.test.size()) < cfg.testViews) {
            ds.test.push_back(std::move(view));
        } else {
            ds.train.push_back(std::move(view));
        }
    }
    return ds;
}

} // namespace fusion3d::scenes
