/** @file Tests for the multiresolution hash encoding, including the two
 *  addressing properties Technique T4 depends on. */

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nerf/hash_encoding.h"

namespace fusion3d::nerf
{
namespace
{

HashGridConfig
smallConfig()
{
    HashGridConfig cfg;
    cfg.levels = 6;
    cfg.featuresPerLevel = 2;
    cfg.log2TableSize = 12;
    cfg.baseResolution = 4;
    cfg.maxResolution = 64;
    return cfg;
}

TEST(HashGrid, ResolutionGrowthIsGeometric)
{
    HashGridEncoding enc(smallConfig());
    EXPECT_EQ(enc.resolution(0), 4);
    // Geometric growth with floor(): the top level lands within one
    // step of the configured maximum.
    EXPECT_GE(enc.resolution(5), 63);
    EXPECT_LE(enc.resolution(5), 64);
    for (int l = 1; l < 6; ++l)
        EXPECT_GT(enc.resolution(l), enc.resolution(l - 1));
}

TEST(HashGrid, DenseLevelsBelowTableSize)
{
    HashGridEncoding enc(smallConfig());
    // (4+1)^3 = 125 <= 4096: dense. 64 needs (65)^3 > 4096: hashed.
    EXPECT_TRUE(enc.isDense(0));
    EXPECT_FALSE(enc.isDense(5));
    EXPECT_EQ(enc.levelEntries(0), 125u);
    EXPECT_EQ(enc.levelEntries(5), 4096u);
}

TEST(HashGrid, DenseIndexBijective)
{
    HashGridEncoding enc(smallConfig());
    std::set<std::uint32_t> seen;
    for (int z = 0; z <= 4; ++z)
        for (int y = 0; y <= 4; ++y)
            for (int x = 0; x <= 4; ++x)
                seen.insert(enc.vertexIndex(0, {x, y, z}));
    EXPECT_EQ(seen.size(), 125u);
}

/**
 * THE Level-3 tiling property (Sec. V-B): hashed addresses of vertices
 * offset by one unit along X always have opposite parities.
 */
TEST(HashGrid, XOffsetFlipsAddressParityHashed)
{
    const std::uint32_t mask = (1u << 14) - 1;
    Pcg32 rng(77);
    for (int i = 0; i < 20000; ++i) {
        const Vec3i c{static_cast<int>(rng.nextBounded(1 << 20)),
                      static_cast<int>(rng.nextBounded(1 << 20)),
                      static_cast<int>(rng.nextBounded(1 << 20))};
        const std::uint32_t a0 = HashGridEncoding::hashCoords(c, mask);
        const std::uint32_t a1 = HashGridEncoding::hashCoords({c.x + 1, c.y, c.z}, mask);
        EXPECT_NE(a0 & 1u, a1 & 1u) << "at " << c.x << "," << c.y << "," << c.z;
    }
}

/** The same property holds for dense-level indices (stride-1 x). */
TEST(HashGrid, XOffsetFlipsAddressParityDense)
{
    HashGridEncoding enc(smallConfig());
    for (int z = 0; z < 4; ++z) {
        for (int y = 0; y < 4; ++y) {
            for (int x = 0; x < 4; ++x) {
                const std::uint32_t a0 = enc.vertexIndex(0, {x, y, z});
                const std::uint32_t a1 = enc.vertexIndex(0, {x + 1, y, z});
                EXPECT_NE(a0 & 1u, a1 & 1u);
            }
        }
    }
}

/**
 * The Level-2 property: the large Y/Z hash multipliers spread the four
 * YZ-offset pairs far apart in the table (mean distance ~ 1/4 of it).
 */
TEST(HashGrid, YzOffsetsSpreadAcrossTable)
{
    const std::uint32_t mask = (1u << 14) - 1;
    Pcg32 rng(78);
    double acc = 0.0;
    int n = 0;
    for (int i = 0; i < 5000; ++i) {
        const Vec3i c{static_cast<int>(rng.nextBounded(1 << 16)),
                      static_cast<int>(rng.nextBounded(1 << 16)),
                      static_cast<int>(rng.nextBounded(1 << 16))};
        const std::uint32_t base = HashGridEncoding::hashCoords(c, mask);
        for (int dy = 0; dy <= 1; ++dy) {
            for (int dz = 0; dz <= 1; ++dz) {
                if (dy == 0 && dz == 0)
                    continue;
                const std::uint32_t other =
                    HashGridEncoding::hashCoords({c.x, c.y + dy, c.z + dz}, mask);
                const std::uint32_t d =
                    base > other ? base - other : other - base;
                acc += d;
                ++n;
            }
        }
    }
    const double mean_frac = acc / n / static_cast<double>(mask + 1);
    // Uniformly random pairs average 1/3 of the table; anything above
    // ~1/5 demonstrates the wide spread the paper leverages.
    EXPECT_GT(mean_frac, 0.2);
}

TEST(HashGrid, EncodeAtVertexReturnsVertexFeatures)
{
    HashGridConfig cfg = smallConfig();
    cfg.levels = 1; // single dense level, resolution 4
    cfg.maxResolution = 4;
    HashGridEncoding enc(cfg);

    // Plant a known feature at vertex (2,1,3).
    const std::uint32_t idx = enc.vertexIndex(0, {2, 1, 3});
    enc.params()[idx * 2 + 0] = 0.75f;
    enc.params()[idx * 2 + 1] = -0.5f;

    std::vector<float> out(2);
    enc.encode({2.0f / 4.0f, 1.0f / 4.0f, 3.0f / 4.0f}, out);
    EXPECT_NEAR(out[0], 0.75f, 1e-3f);
    EXPECT_NEAR(out[1], -0.5f, 1e-3f);
}

TEST(HashGrid, InterpolationIsTrilinear)
{
    HashGridConfig cfg;
    cfg.levels = 1;
    cfg.featuresPerLevel = 1;
    cfg.log2TableSize = 12;
    cfg.baseResolution = 2;
    cfg.maxResolution = 2;
    HashGridEncoding enc(cfg);

    // Feature = x coordinate of the vertex: interpolation of a linear
    // field reproduces it exactly.
    for (int z = 0; z <= 2; ++z)
        for (int y = 0; y <= 2; ++y)
            for (int x = 0; x <= 2; ++x)
                enc.params()[enc.vertexIndex(0, {x, y, z})] = static_cast<float>(x);

    Pcg32 rng(5);
    std::vector<float> out(1);
    for (int i = 0; i < 200; ++i) {
        const Vec3f p = rng.nextVec3();
        enc.encode(p, out);
        EXPECT_NEAR(out[0], p.x * 2.0f, 2e-3f) << "at " << p.x;
    }
}

TEST(HashGrid, EncodeContinuity)
{
    HashGridEncoding enc(smallConfig(), 9);
    // Randomize parameters so the test is not vacuous.
    Pcg32 prng(10);
    for (float &p : enc.params())
        p = prng.nextRange(-1.0f, 1.0f);

    std::vector<float> a(enc.config().encodedDims());
    std::vector<float> b(enc.config().encodedDims());
    Pcg32 rng(11);
    for (int i = 0; i < 100; ++i) {
        const Vec3f p = clamp(rng.nextVec3(), 0.01f, 0.99f);
        enc.encode(p, a);
        enc.encode(p + Vec3f(1e-5f, 1e-5f, 1e-5f), b);
        for (int d = 0; d < enc.config().encodedDims(); ++d)
            EXPECT_NEAR(a[d], b[d], 1e-2f);
    }
}

TEST(HashGrid, BackwardMatchesFiniteDifference)
{
    HashGridConfig cfg = smallConfig();
    cfg.levels = 2;
    HashGridEncoding enc(cfg, 21);
    Pcg32 prng(22);
    for (float &p : enc.params())
        p = prng.nextRange(-1.0f, 1.0f);

    const Vec3f pos{0.37f, 0.52f, 0.81f};
    const int dims = cfg.encodedDims();
    std::vector<float> dout(dims);
    for (int d = 0; d < dims; ++d)
        dout[d] = prng.nextRange(-1.0f, 1.0f);

    enc.zeroGrads();
    enc.backward(pos, dout);

    // Check a sample of parameter gradients by central differences of
    // the scalar L = dot(encode(pos), dout).
    std::vector<float> buf(dims);
    const auto loss = [&]() {
        enc.encode(pos, buf);
        float acc = 0.0f;
        for (int d = 0; d < dims; ++d)
            acc += buf[d] * dout[d];
        return acc;
    };

    int checked = 0;
    for (std::size_t i = 0; i < enc.paramCount() && checked < 60; i += 193) {
        const float g = enc.grads()[i];
        const float eps = 1e-3f;
        const float orig = enc.params()[i];
        enc.params()[i] = orig + eps;
        const float lp = loss();
        enc.params()[i] = orig - eps;
        const float lm = loss();
        enc.params()[i] = orig;
        const float fd = (lp - lm) / (2.0f * eps);
        EXPECT_NEAR(g, fd, 5e-3f) << "param " << i;
        ++checked;
    }
    EXPECT_GE(checked, 30);
}

TEST(HashGrid, VisitorSeesEightCornersPerLevel)
{
    struct CountingVisitor : VertexVisitor
    {
        int visits = 0;
        int last_level = -1;
        int corners_in_level = 0;
        void
        visit(int level, int corner, const Vec3i &, std::uint32_t, bool) override
        {
            ++visits;
            if (level != last_level) {
                if (last_level >= 0) {
                    EXPECT_EQ(corners_in_level, 8);
                }
                last_level = level;
                corners_in_level = 0;
            }
            EXPECT_EQ(corner, corners_in_level);
            ++corners_in_level;
        }
    };

    HashGridEncoding enc(smallConfig());
    std::vector<float> out(enc.config().encodedDims());
    CountingVisitor v;
    enc.encode({0.3f, 0.4f, 0.5f}, out, &v);
    EXPECT_EQ(v.visits, 6 * 8);
}

/**
 * Level-major batched gather is bit-exact with the scalar encode: per
 * point, corners are visited and accumulated in the same order, only
 * the loop nest is transposed (levels outer, points inner).
 */
TEST(HashGrid, EncodeBatchMatchesScalarBitExact)
{
    HashGridEncoding enc(smallConfig(), 33);
    Pcg32 prng(34);
    for (float &p : enc.params())
        p = prng.nextRange(-1.0f, 1.0f);

    const std::size_t n = 19;
    const int dims = enc.config().encodedDims();
    std::vector<Vec3f> pos(n);
    Pcg32 rng(35);
    for (Vec3f &p : pos)
        p = clamp(rng.nextVec3(), 0.01f, 0.99f);

    std::vector<float> batch(static_cast<std::size_t>(dims) * n);
    enc.encodeBatch(pos, batch);

    std::vector<float> ref(static_cast<std::size_t>(dims));
    for (std::size_t j = 0; j < n; ++j) {
        enc.encode(pos[j], ref);
        for (int d = 0; d < dims; ++d)
            EXPECT_EQ(batch[static_cast<std::size_t>(d) * n + j],
                      ref[static_cast<std::size_t>(d)])
                << "point " << j << " dim " << d;
    }
}

/**
 * Batched backward scatter accumulates the same per-parameter gradient
 * as point-at-a-time backward; tolerance only covers the level-major
 * reassociation when several points hit the same table slot.
 */
TEST(HashGrid, BackwardBatchMatchesScalarSum)
{
    HashGridConfig cfg = smallConfig();
    HashGridEncoding enc(cfg, 43);
    const std::size_t n = 13;
    const int dims = cfg.encodedDims();

    Pcg32 rng(44);
    std::vector<Vec3f> pos(n);
    for (Vec3f &p : pos)
        p = clamp(rng.nextVec3(), 0.01f, 0.99f);
    std::vector<float> dout(static_cast<std::size_t>(dims) * n);
    for (float &v : dout)
        v = rng.nextRange(-1.0f, 1.0f);

    // Scalar reference accumulation.
    enc.zeroGrads();
    std::vector<float> dcol(static_cast<std::size_t>(dims));
    for (std::size_t j = 0; j < n; ++j) {
        for (int d = 0; d < dims; ++d)
            dcol[static_cast<std::size_t>(d)] =
                dout[static_cast<std::size_t>(d) * n + j];
        enc.backward(pos[j], dcol);
    }
    std::vector<float> ref(enc.grads().begin(), enc.grads().end());

    enc.zeroGrads();
    enc.backwardBatch(pos, dout);
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(enc.grads()[i], ref[i], 1e-5f + 1e-4f * std::fabs(ref[i]))
            << "param " << i;
}

/**
 * The batched gather keeps each point's 8-corner group contiguous and
 * in corner order, with levels non-decreasing across the whole batch —
 * the access pattern the Stage-II chip model (InterpModule) assumes
 * when flushing independent corner groups.
 */
TEST(HashGrid, BatchVisitorGroupsEightCorners)
{
    struct GroupVisitor : VertexVisitor
    {
        int visits = 0;
        int last_level = 0;
        bool corners_ordered = true;
        bool levels_monotone = true;
        void
        visit(int level, int corner, const Vec3i &, std::uint32_t, bool) override
        {
            if (corner != visits % 8)
                corners_ordered = false;
            if (visits % 8 == 0 && level < last_level)
                levels_monotone = false;
            last_level = level;
            ++visits;
        }
    };

    HashGridEncoding enc(smallConfig());
    const std::size_t n = 5;
    std::vector<Vec3f> pos(n);
    Pcg32 rng(55);
    for (Vec3f &p : pos)
        p = clamp(rng.nextVec3(), 0.01f, 0.99f);
    std::vector<float> out(static_cast<std::size_t>(enc.config().encodedDims()) * n);

    GroupVisitor v;
    enc.encodeBatch(pos, out, &v);
    EXPECT_EQ(v.visits, 6 * 8 * static_cast<int>(n));
    EXPECT_TRUE(v.corners_ordered);
    EXPECT_TRUE(v.levels_monotone);
}

TEST(HashGrid, ParamBytesAccounting)
{
    HashGridEncoding enc(smallConfig());
    EXPECT_EQ(enc.paramBytes(2), enc.paramCount() * 2);
    EXPECT_EQ(enc.paramBytes(4), enc.paramCount() * 4);
}

} // namespace
} // namespace fusion3d::nerf
