/**
 * @file
 * A simple linear-RGB float image plus the quality metrics (MSE / PSNR)
 * the paper uses as its unified evaluation standard (Sec. VI-A).
 */

#ifndef FUSION3D_COMMON_IMAGE_H_
#define FUSION3D_COMMON_IMAGE_H_

#include <string>
#include <vector>

#include "common/vec.h"

namespace fusion3d
{

/** Row-major RGB image with float channels in [0, 1]. */
class Image
{
  public:
    Image() = default;

    /** Create a w x h image cleared to @p fill. */
    Image(int w, int h, const Vec3f &fill = Vec3f(0.0f));

    int width() const { return width_; }
    int height() const { return height_; }
    int pixelCount() const { return width_ * height_; }
    bool empty() const { return pixels_.empty(); }

    /** Pixel access; (x, y) must be in range. */
    Vec3f &at(int x, int y) { return pixels_[static_cast<std::size_t>(y) * width_ + x]; }
    const Vec3f &
    at(int x, int y) const
    {
        return pixels_[static_cast<std::size_t>(y) * width_ + x];
    }

    const std::vector<Vec3f> &pixels() const { return pixels_; }
    std::vector<Vec3f> &pixels() { return pixels_; }

    /** Set every pixel to @p c. */
    void fill(const Vec3f &c);

    /**
     * Write a binary PPM (P6) file with sRGB-ish gamma 2.2 applied.
     * @return true on success.
     */
    bool writePpm(const std::string &path) const;

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<Vec3f> pixels_;
};

/** Mean squared error over all channels; images must match in size. */
double mse(const Image &a, const Image &b);

/**
 * Peak signal-to-noise ratio in dB against peak 1.0.
 * Identical images return +inf.
 */
double psnr(const Image &a, const Image &b);

/** PSNR corresponding to a given MSE (peak 1.0). */
double psnrFromMse(double mse_value);

} // namespace fusion3d

#endif // FUSION3D_COMMON_IMAGE_H_
