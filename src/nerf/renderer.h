/**
 * @file
 * Stage III volumetric rendering: alpha compositing of per-sample
 * densities and colors along a ray, with the exact backward pass needed
 * for training. Early termination at low transmittance matches what the
 * post-processing hardware module does.
 */

#ifndef FUSION3D_NERF_RENDERER_H_
#define FUSION3D_NERF_RENDERER_H_

#include <span>
#include <vector>

#include "common/vec.h"

namespace fusion3d::nerf
{

/** Compositing parameters. */
struct RenderParams
{
    /** Stop integrating once transmittance falls below this. */
    float terminationThreshold = 1e-4f;
    /** Background color added behind the remaining transmittance. */
    Vec3f background{0.0f, 0.0f, 0.0f};
};

/** Result of compositing one ray. */
struct CompositeResult
{
    Vec3f color;
    /** Transmittance remaining after the last used sample. */
    float transmittance = 1.0f;
    /** Samples actually consumed before early termination. */
    int used = 0;
};

/**
 * Forward compositing:
 *   alpha_i = 1 - exp(-sigma_i * dt_i)
 *   T_i     = prod_{j<i} (1 - alpha_j)
 *   C       = sum_i T_i * alpha_i * c_i + T_end * background
 */
CompositeResult composite(std::span<const float> sigmas, std::span<const Vec3f> rgbs,
                          std::span<const float> dts, const RenderParams &params);

/**
 * Expected termination depth of a composited ray: sum_i w_i * t_i plus
 * the remaining transmittance at the far bound. Used by the image-warp
 * extension (frame reuse a la MetaVRain) to reproject pixels.
 *
 * @param ts    Ray parameter of each sample (matching sigmas/dts).
 * @param t_far Depth assigned to the un-terminated remainder.
 */
float compositeDepth(std::span<const float> sigmas, std::span<const float> dts,
                     std::span<const float> ts, const RenderParams &params,
                     float t_far);

/**
 * Reusable scratch for compositeBackward(); keeps the per-ray prefix
 * buffers out of the allocator on hot training paths. Grows to the
 * longest ray seen and never shrinks.
 */
struct CompositeBackwardScratch
{
    std::vector<float> t_after;
    std::vector<float> weight;
};

/**
 * Backward pass of composite(). Only the first @p fwd.used samples
 * receive gradients; later samples were never used.
 *
 * @param fwd     Result of the matching forward call.
 * @param dcolor  dL/dC.
 * @param dsigmas Receives dL/dsigma_i (first fwd.used entries written,
 *                the rest zeroed).
 * @param drgbs   Receives dL/dc_i, same convention.
 * @param scratch Caller-owned scratch reused across rays.
 */
void compositeBackward(std::span<const float> sigmas, std::span<const Vec3f> rgbs,
                       std::span<const float> dts, const RenderParams &params,
                       const CompositeResult &fwd, const Vec3f &dcolor,
                       std::span<float> dsigmas, std::span<Vec3f> drgbs,
                       CompositeBackwardScratch &scratch);

/** Convenience overload that owns a transient scratch (cold paths only). */
void compositeBackward(std::span<const float> sigmas, std::span<const Vec3f> rgbs,
                       std::span<const float> dts, const RenderParams &params,
                       const CompositeResult &fwd, const Vec3f &dcolor,
                       std::span<float> dsigmas, std::span<Vec3f> drgbs);

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_RENDERER_H_
