#include "common/op_counter.h"

#include "common/logging.h"

namespace fusion3d
{

std::string
OpCounter::toString() const
{
    return strprintf("div=%llu mul=%llu add=%llu mac=%llu cmp=%llu",
                     static_cast<unsigned long long>(divs),
                     static_cast<unsigned long long>(muls),
                     static_cast<unsigned long long>(adds),
                     static_cast<unsigned long long>(macs),
                     static_cast<unsigned long long>(cmps));
}

} // namespace fusion3d
