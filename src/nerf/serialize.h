/**
 * @file
 * Binary model serialization. The paper's deployment story leans on the
 * small NeRF footprint (~10 MB) for transmission over the bandwidth-
 * constrained edge link; this is the writer/reader for that artifact.
 *
 * Format v2 (little-endian): magic "F3DM", u32 version, the
 * HashGridConfig and MLP dimensions, a CRC32 of the parameter payload,
 * then the three parameter blocks as raw float32. The CRC catches the
 * corruption truncation checks cannot (bit flips inside a full-length
 * payload), which matters once artifacts cross the paper's bandwidth-
 * constrained edge link.
 *
 * Format v3 (little-endian) makes the artifact backend-polymorphic:
 * magic "F3DM", u32 version = 3, u32 BackendKind tag, then one
 * per-backend section — architecture dimensions, a CRC32 of the
 * parameter payload, the stored per-block parameter counts, and the
 * raw float32 parameter blocks. saveField()/loadFieldVerbose() are the
 * backend-polymorphic entry points; hash-grid fields keep writing v2
 * (so every historical reader still loads them) and v2 artifacts load
 * through loadFieldVerbose() as hash-grid fields unchanged.
 *
 * Checkpointing uses saveModelAtomic(): write to "<path>.tmp", fsync,
 * then rename over the destination — a crash mid-write (exercised by
 * the "trainer.ckpt.write" fault point) can orphan a temp file but can
 * never leave a partial artifact at the final path.
 */

#ifndef FUSION3D_NERF_SERIALIZE_H_
#define FUSION3D_NERF_SERIALIZE_H_

#include <memory>
#include <string>

#include "nerf/field.h"
#include "nerf/nerf_model.h"

namespace fusion3d::nerf
{

/** Serialize @p model to @p path. @return true on success. */
bool saveModel(const NerfModel &model, const std::string &path);

/**
 * Crash-safe save: write to "<path>.tmp", flush + fsync, then atomically
 * rename onto @p path. On any failure (including an injected crash via
 * the "trainer.ckpt.write" fault point) the destination is untouched:
 * it either keeps its previous complete artifact or stays absent.
 * @return true when @p path holds the new artifact.
 */
bool saveModelAtomic(const NerfModel &model, const std::string &path);

/** Why a load failed (LoadStatus::ok means it did not). */
enum class LoadStatus
{
    ok,
    /** The file could not be opened. */
    ioError,
    /** The magic bytes are not "F3DM". */
    badMagic,
    /** The format version is not one this build reads. */
    badVersion,
    /** The header is self-inconsistent (bad dimensions, or stored
     *  parameter counts that do not match the declared architecture). */
    headerMismatch,
    /** The file ends before the parameter blocks do. */
    truncated,
    /** The parameter payload does not match the header's CRC32. */
    badChecksum,
    /** A v3 artifact declares a backend kind this build does not know. */
    badBackend,
};

/** Human-readable name of @p status. */
const char *loadStatusName(LoadStatus status);

/** Outcome of loadModelVerbose(): a model, or a diagnosable failure. */
struct LoadResult
{
    std::unique_ptr<NerfModel> model;
    LoadStatus status = LoadStatus::ioError;
    /** One-line diagnosis, empty on success. */
    std::string message;

    explicit operator bool() const { return status == LoadStatus::ok; }
};

/**
 * Load a model saved by saveModel(), reporting *why* a failure
 * happened — I/O error, bad magic, unsupported version, inconsistent
 * header, or a truncated parameter payload.
 */
LoadResult loadModelVerbose(const std::string &path);

/**
 * Load a model saved by saveModel().
 * @return nullptr on any failure (the reason is logged via warn();
 *         use loadModelVerbose() to inspect it programmatically).
 */
std::unique_ptr<NerfModel> loadModel(const std::string &path);

/**
 * Copy all parameters of @p src into @p dst (encoding and both MLPs).
 * The serving ModelRegistry and the deployment example use this to
 * install deserialized weights into a live pipeline.
 * @return false (and copy nothing) if any parameter-block size differs.
 */
bool loadInto(NerfModel &dst, const NerfModel &src);

/** On-disk footprint of a model at the given parameter width. */
std::size_t modelFootprintBytes(const NerfModel &model, int bytes_per_param = 4);

/**
 * Serialize @p field to @p path, choosing the format by backend kind:
 * hash-grid fields write the v2 layout (readable by every historical
 * loadModel build), FreqNeRF and TensoRF fields write v3 sections.
 * @return true on success.
 */
bool saveField(const ServeableField &field, const std::string &path);

/** Crash-safe saveField(): temp file + fsync + atomic rename, like
 *  saveModelAtomic(). @return true when @p path holds the artifact. */
bool saveFieldAtomic(const ServeableField &field, const std::string &path);

/** Outcome of loadFieldVerbose(): a field, or a diagnosable failure. */
struct FieldLoadResult
{
    std::unique_ptr<ServeableField> field;
    LoadStatus status = LoadStatus::ioError;
    /** One-line diagnosis, empty on success. */
    std::string message;

    explicit operator bool() const { return status == LoadStatus::ok; }
};

/**
 * Load any .f3dm artifact as a ServeableField: v2 files come back as
 * hash-grid fields (via the legacy loadModelVerbose() path, identical
 * diagnostics), v3 files dispatch on their BackendKind tag — an
 * unknown tag yields LoadStatus::badBackend, and the per-backend
 * sections get the same truncation/CRC scrutiny as v2.
 */
FieldLoadResult loadFieldVerbose(const std::string &path);

/**
 * Load any .f3dm artifact as a ServeableField.
 * @return nullptr on any failure (the reason is logged via warn();
 *         use loadFieldVerbose() to inspect it programmatically).
 */
std::unique_ptr<ServeableField> loadField(const std::string &path);

/** On-disk footprint of @p field's artifact at the given width. */
std::size_t fieldFootprintBytes(const ServeableField &field,
                                int bytes_per_param = 4);

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_SERIALIZE_H_
